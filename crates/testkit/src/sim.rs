//! The deterministic virtual scheduler behind [`VirtualRuntime`].
//!
//! # How one-at-a-time simulation works
//!
//! Every logical task (the root test body, each workload session, the
//! engine's GC task, the WAL's group-commit writer) runs on a real OS
//! thread — but at most **one** of them is ever runnable: the thread
//! whose task id equals `current`. Everyone else blocks on a condvar.
//! Whenever the running task reaches a scheduling point — a
//! [`Runtime::yield_now`], a sleep, an eventcount wait, a join — it
//! hands the token back to the scheduler, which picks the next task
//! from the ready set. Concurrency is therefore an *explicit
//! interleaving of logical steps*, and the same seed (plus the same
//! [`PickPolicy`]) replays the same interleaving bit for bit.
//!
//! # Schedule decision traces
//!
//! Every scheduling decision is a `(runnable set, chosen task)` pair.
//! With [`SimConfig::record_trace`] the scheduler records them all as
//! a [`ScheduleTrace`] — an explicit, serializable coordinate for the
//! run that is *stronger* than the seed: a trace (or any prefix of
//! one) can be replayed under [`PickPolicy::Trace`], which follows the
//! recorded picks while they remain valid and falls back to seeded
//! random choice afterwards. That makes traces minimizable (drop
//! decisions, see if the failure survives) and mutable (replay a
//! prefix, explore a fresh suffix) — the substrate for `sim_search`.
//!
//! # Scheduling policies
//!
//! * [`PickPolicy::Random`] — uniform over the ready set, one RNG draw
//!   per decision (the PR-6 behavior, and the default).
//! * [`PickPolicy::Pct`] — PCT-style priority scheduling: every task
//!   gets a random priority at spawn, the highest-priority ready task
//!   always runs, and at `depth` pre-drawn change points the running
//!   leader is demoted below everyone else. Rare-schedule bugs that
//!   uniform random sampling misses often sit a few priority
//!   inversions away.
//! * [`PickPolicy::Trace`] — replay a recorded decision list.
//!
//! # Virtual time
//!
//! The clock ([`Runtime::now`]) only moves when nothing is runnable:
//! it then jumps straight to the earliest sleep/timeout deadline and
//! readies the tasks that deadline releases. Timers are exact, idle
//! time is free, and a "2 ms" GC interval elapses in microseconds of
//! wall time. The model is a machine that is infinitely fast between
//! timer fires — so background work (GC ticks) happens exactly when
//! the workload leaves idle gaps (think time), never "by luck".
//!
//! # Why the engine stays deterministic under this scheduler
//!
//! No engine or WAL code path blocks, sleeps, or yields while holding
//! a shard or log lock (waits happen after locks are released — see
//! the commit path), so the std mutexes inside the engine are always
//! uncontended here and never order tasks. All cross-task ordering
//! flows through this scheduler's choices; everything else in the
//! engine is a pure function of that order (hash-map iteration order
//! can vary between runs, but it only feeds order-insensitive
//! decisions — set membership, bitmask fixpoints, reachability — a
//! property the determinism self-test pins down).
//!
//! # Failure surfaces
//!
//! A deadlock (no runnable task, no pending timer, live tasks
//! remaining) panics with the seed, a task-state dump, and the
//! wait-for edges (who waits on an event created by whom). A panic in
//! any task is caught, recorded, and re-raised from
//! [`VirtualRuntime::run`] with the seed attached — a red run is
//! always replayable by its seed alone. [`VirtualRuntime::run_cfg`]
//! instead *captures* the failure as a [`SimFailure`] so search
//! drivers can treat a red schedule as data rather than a panic.

use deltx_runtime::{RtEvent, Runtime, TaskHandle};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

type TaskId = usize;
type EventId = usize;

thread_local! {
    /// Which simulation task this OS thread carries (None off-task).
    static CURRENT: Cell<Option<TaskId>> = const { Cell::new(None) };
}

/// SplitMix64: the scheduler's only randomness, advanced once per
/// random scheduling decision (and once per PCT priority draw).
fn next_rng(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scheduling decision: the ready set the scheduler saw (sorted
/// ascending — task ids come out of an ordered map) and the task it
/// handed the token to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Task ids that were runnable at this decision point.
    pub ready: Vec<usize>,
    /// The task that got the token.
    pub chosen: usize,
}

/// A serializable schedule coordinate: the full (or a shrunk) list of
/// scheduling decisions of one run. Replayed via [`PickPolicy::Trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Decisions in the order the scheduler took them.
    pub decisions: Vec<Decision>,
}

impl ScheduleTrace {
    /// Line-based text form: one `d <chosen> <r,r,...>` line per
    /// decision. Embedded verbatim in repro files.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str("d ");
            out.push_str(&d.chosen.to_string());
            out.push(' ');
            let ready: Vec<String> = d.ready.iter().map(usize::to_string).collect();
            out.push_str(&ready.join(","));
            out.push('\n');
        }
        out
    }

    /// Parses the [`ScheduleTrace::to_text`] form. Blank lines are
    /// skipped; anything else malformed is an error.
    pub fn from_text(text: &str) -> Result<ScheduleTrace, String> {
        let mut decisions = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("d") {
                return Err(format!(
                    "trace line {}: expected `d <chosen> <ready>`",
                    i + 1
                ));
            }
            let chosen: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("trace line {}: bad chosen task id", i + 1))?;
            let ready: Vec<usize> = match parts.next() {
                Some(r) => r
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse()
                            .map_err(|_| format!("trace line {}: bad ready id `{s}`", i + 1))
                    })
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            decisions.push(Decision { ready, chosen });
        }
        Ok(ScheduleTrace { decisions })
    }

    /// The first `n` decisions — the mutation primitive for
    /// coverage-guided search (replay a prefix, explore a new suffix).
    pub fn truncated(&self, n: usize) -> ScheduleTrace {
        ScheduleTrace {
            decisions: self.decisions[..n.min(self.decisions.len())].to_vec(),
        }
    }
}

/// How the scheduler picks among ready tasks.
#[derive(Clone, Debug)]
pub enum PickPolicy {
    /// Uniform random over the ready set (the default).
    Random,
    /// PCT-style priority scheduling with `depth` change points
    /// spread over an estimated run length of `expected_len`
    /// scheduling decisions.
    Pct {
        /// Number of priority-change points.
        depth: usize,
        /// Estimated total decisions in the run (from a probe run's
        /// switch count); change points are drawn uniformly below it.
        expected_len: u64,
    },
    /// Replay a recorded decision list; after it is exhausted (or
    /// when a recorded pick is no longer runnable) fall back to
    /// seeded random choice.
    Trace(ScheduleTrace),
}

/// Full configuration of one simulated run: the seed, the scheduling
/// policy, and whether to record the decision trace.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seeds the scheduler RNG (and, by convention, workload RNGs).
    pub seed: u64,
    /// Scheduling policy.
    pub policy: PickPolicy,
    /// Record every decision as a [`ScheduleTrace`].
    pub record_trace: bool,
}

impl SimConfig {
    /// The classic seed-only configuration: uniform random picks, no
    /// trace recording — what [`VirtualRuntime::run`] uses.
    pub fn random(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            policy: PickPolicy::Random,
            record_trace: false,
        }
    }
}

/// A captured failure of a simulated run (from
/// [`VirtualRuntime::run_cfg`]): the seed and a human-readable
/// headline, plus enough state to re-raise exactly as
/// [`VirtualRuntime::run`] would have panicked.
pub struct SimFailure {
    /// Seed of the failing run.
    pub seed: u64,
    /// Failure headline: the panic message, deadlock report, or
    /// leaked-task list.
    pub message: String,
    task_panic: Option<String>,
    leaked: Vec<String>,
    root_payload: Option<Box<dyn std::any::Any + Send>>,
}

impl std::fmt::Debug for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFailure")
            .field("seed", &self.seed)
            .field("message", &self.message)
            .finish()
    }
}

impl SimFailure {
    /// The first task-thread panic message, if a spawned task (rather
    /// than the root) raised the primary failure — e.g. the deadlock
    /// report when the detector fired while a worker held the token.
    pub fn task_panic(&self) -> Option<&str> {
        self.task_panic.as_deref()
    }

    /// Re-raises this failure with the exact panic behavior of
    /// [`VirtualRuntime::run`].
    pub fn raise(self) -> ! {
        if let Some(p) = self.root_payload {
            if let Some(m) = self.task_panic {
                eprintln!("deltx-sim: first task failure (seed {}): {m}", self.seed);
            }
            std::panic::resume_unwind(p);
        }
        if let Some(m) = self.task_panic {
            panic!("deltx-sim: task panicked (seed {}): {m}", self.seed);
        }
        panic!(
            "deltx-sim: tasks still live at end of run (seed {}): {:?} — join every spawned \
             task (dropping the engine joins its tasks)",
            self.seed, self.leaked
        );
    }
}

/// What a finished run reports besides the closure's return value:
/// the recorded trace (if asked for), the engine-event signature set,
/// and scheduler counters.
#[derive(Debug)]
pub struct SimRunInfo {
    /// The recorded decision trace (when `record_trace` was set).
    pub trace: Option<ScheduleTrace>,
    /// Distinct `(kind, value)` engine events seen (via
    /// [`Runtime::emit`]) — the coverage signature of the schedule.
    pub signatures: BTreeSet<(&'static str, u64)>,
    /// Scheduling decisions taken.
    pub switches: u64,
    /// Under [`PickPolicy::Trace`]: decisions where the recorded pick
    /// was not runnable and the scheduler fell back to random.
    pub divergences: u64,
}

/// Where a task stands with the scheduler.
enum Run {
    /// Holds the token (at most one task at a time).
    Running,
    /// Eligible for the next scheduling decision.
    Ready,
    /// Off the clock until virtual time reaches `until`.
    Sleeping { until: u64 },
    /// Parked on an eventcount, optionally with a deadline.
    Waiting { ev: EventId, deadline: Option<u64> },
    /// Done; joiners have been released.
    Finished,
}

impl Run {
    fn label(&self) -> String {
        match self {
            Run::Running => "running".into(),
            Run::Ready => "ready".into(),
            Run::Sleeping { until } => format!("sleeping until {until}ns"),
            Run::Waiting { ev, deadline, .. } => match deadline {
                Some(d) => format!("waiting on ev{ev} until {d}ns"),
                None => format!("waiting on ev{ev}"),
            },
            Run::Finished => "finished".into(),
        }
    }
}

struct Task {
    name: String,
    run: Run,
    /// After a Waiting task is readied: `true` if a notify did it,
    /// `false` if its deadline expired. Read back by `wait_timeout`.
    wake_notified: bool,
    /// Bumped when this task finishes; joiners wait on it.
    done_ev: EventId,
}

/// An eventcount's scheduler-side state: the epoch plus the task that
/// created it (for wait-for edges in the deadlock report; a spawned
/// task's `done_ev` is credited to the task itself, so "A waits on an
/// event created by B" reads as the join edge A → B).
struct EventSt {
    epoch: u64,
    creator: Option<TaskId>,
}

/// Policy-specific scheduler state.
enum PolicyState {
    Random,
    Pct {
        /// Priority per live task; highest ready priority runs.
        prio: BTreeMap<TaskId, u64>,
        /// Decision indices at which the leader is demoted, sorted.
        change_at: Vec<u64>,
        next_change: usize,
        /// Next demotion priority (descending, below all random ones).
        low: u64,
    },
    Trace {
        decisions: Vec<Decision>,
        pos: usize,
        divergences: u64,
    },
}

impl PolicyState {
    fn new(policy: &PickPolicy, rng: &mut u64) -> PolicyState {
        match policy {
            PickPolicy::Random => PolicyState::Random,
            PickPolicy::Pct {
                depth,
                expected_len,
            } => {
                let span = (*expected_len).max(1);
                let mut change_at: Vec<u64> = (0..*depth).map(|_| next_rng(rng) % span).collect();
                change_at.sort_unstable();
                PolicyState::Pct {
                    prio: BTreeMap::new(),
                    change_at,
                    next_change: 0,
                    // Demotions count down from depth, staying below
                    // every randomly drawn priority (which is >= 2^32).
                    low: *depth as u64,
                }
            }
            PickPolicy::Trace(t) => PolicyState::Trace {
                decisions: t.decisions.clone(),
                pos: 0,
                divergences: 0,
            },
        }
    }

    /// Called for every task at creation (PCT draws its priority).
    fn on_task_created(&mut self, rng: &mut u64, id: TaskId) {
        if let PolicyState::Pct { prio, .. } = self {
            prio.insert(id, next_rng(rng) | (1 << 32));
        }
    }
}

struct SimState {
    rng: u64,
    /// Virtual nanoseconds since the simulation started.
    now: u64,
    current: Option<TaskId>,
    tasks: BTreeMap<TaskId, Task>,
    next_task: TaskId,
    /// Eventcount epochs + creators.
    events: BTreeMap<EventId, EventSt>,
    next_event: EventId,
    /// First panic payload from any task (re-raised at run end).
    panic: Option<String>,
    /// The simulation aborted (deadlock or propagated panic); every
    /// parked thread unwinds instead of waiting forever.
    dead: bool,
    /// Scheduling decisions taken (diagnostic).
    switches: u64,
    policy: PolicyState,
    /// Decision recording (Some when `record_trace`).
    trace: Option<Vec<Decision>>,
    /// Engine-event signatures reported via [`Runtime::emit`].
    signatures: BTreeSet<(&'static str, u64)>,
}

struct SimShared {
    seed: u64,
    m: Mutex<SimState>,
    cv: Condvar,
}

impl SimShared {
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn alloc_event(st: &mut SimState, creator: Option<TaskId>) -> EventId {
        let id = st.next_event;
        st.next_event += 1;
        st.events.insert(id, EventSt { epoch: 0, creator });
        id
    }

    /// Bumps `ev`'s epoch and readies every task parked on it.
    fn notify_event(st: &mut SimState, ev: EventId) {
        if let Some(e) = st.events.get_mut(&ev) {
            e.epoch = e.epoch.wrapping_add(1);
        }
        for t in st.tasks.values_mut() {
            if let Run::Waiting { ev: we, .. } = t.run {
                if we == ev {
                    t.run = Run::Ready;
                    t.wake_notified = true;
                }
            }
        }
    }

    /// The wait-for edges of the current task state, one line per
    /// parked task naming the event and its creating task.
    fn wait_for_edges(st: &SimState) -> Vec<String> {
        let mut edges = Vec::new();
        for (id, t) in &st.tasks {
            if let Run::Waiting { ev, .. } = t.run {
                let target = st
                    .events
                    .get(&ev)
                    .and_then(|e| e.creator)
                    .and_then(|c| st.tasks.get(&c).map(|ct| (c, ct.name.clone())));
                match target {
                    Some((c, cname)) => edges.push(format!(
                        "  task {id} `{}` waits on ev{ev} created by task {c} `{cname}`",
                        t.name
                    )),
                    None => edges.push(format!(
                        "  task {id} `{}` waits on ev{ev} (creator unknown)",
                        t.name
                    )),
                }
            }
        }
        edges
    }

    /// Picks the next task to hold the token, advancing virtual time
    /// when nothing is ready. Panics (after marking the sim dead) on
    /// deadlock: live tasks exist but none can ever run again.
    fn pick_next(&self, st: &mut SimState) {
        st.current = None;
        loop {
            let ready: Vec<TaskId> = st
                .tasks
                .iter()
                .filter(|(_, t)| matches!(t.run, Run::Ready))
                .map(|(id, _)| *id)
                .collect();
            if !ready.is_empty() {
                // Split-borrow the fields the policies need.
                let SimState {
                    rng,
                    switches,
                    policy,
                    trace,
                    ..
                } = st;
                let len = ready.len() as u64;
                let pick = match policy {
                    PolicyState::Random => ready[(next_rng(rng) % len) as usize],
                    PolicyState::Pct {
                        prio,
                        change_at,
                        next_change,
                        low,
                    } => {
                        let leader = |prio: &BTreeMap<TaskId, u64>| {
                            *ready
                                .iter()
                                .max_by_key(|id| {
                                    (prio.get(*id).copied().unwrap_or(0), usize::MAX - **id)
                                })
                                .expect("nonempty ready set")
                        };
                        while *next_change < change_at.len() && change_at[*next_change] <= *switches
                        {
                            let demote = leader(prio);
                            prio.insert(demote, *low);
                            *low = low.saturating_sub(1);
                            *next_change += 1;
                        }
                        leader(prio)
                    }
                    PolicyState::Trace {
                        decisions,
                        pos,
                        divergences,
                    } => {
                        let mut choice = None;
                        if *pos < decisions.len() {
                            let want = decisions[*pos].chosen;
                            *pos += 1;
                            if ready.contains(&want) {
                                choice = Some(want);
                            } else {
                                *divergences += 1;
                            }
                        }
                        choice.unwrap_or_else(|| ready[(next_rng(rng) % len) as usize])
                    }
                };
                if let Some(rec) = trace {
                    rec.push(Decision {
                        ready: ready.clone(),
                        chosen: pick,
                    });
                }
                st.tasks.get_mut(&pick).expect("picked task").run = Run::Running;
                st.current = Some(pick);
                st.switches += 1;
                return;
            }
            // Nothing ready: jump the clock to the earliest deadline.
            let next_wake = st
                .tasks
                .values()
                .filter_map(|t| match t.run {
                    Run::Sleeping { until } => Some(until),
                    Run::Waiting {
                        deadline: Some(d), ..
                    } => Some(d),
                    _ => None,
                })
                .min();
            match next_wake {
                Some(w) => {
                    st.now = st.now.max(w);
                    let now = st.now;
                    for t in st.tasks.values_mut() {
                        let expired = match t.run {
                            Run::Sleeping { until } => until <= now,
                            Run::Waiting {
                                deadline: Some(d), ..
                            } => d <= now,
                            _ => false,
                        };
                        if expired {
                            t.run = Run::Ready;
                            t.wake_notified = false;
                        }
                    }
                }
                None => {
                    if st.tasks.values().all(|t| matches!(t.run, Run::Finished)) {
                        // Everyone is done; no token needed.
                        return;
                    }
                    st.dead = true;
                    let dump: Vec<String> = st
                        .tasks
                        .iter()
                        .map(|(id, t)| format!("  task {id} `{}`: {}", t.name, t.run.label()))
                        .collect();
                    let mut edges = Self::wait_for_edges(st);
                    if edges.is_empty() {
                        edges.push("  (none)".into());
                    }
                    let report = format!(
                        "deltx-sim DEADLOCK at t={}ns (seed {}): no runnable task and no \
                         pending timer — replay with DELTX_SEED={}\n{}\nwait-for edges:\n{}",
                        st.now,
                        self.seed,
                        self.seed,
                        dump.join("\n"),
                        edges.join("\n")
                    );
                    // When a worker thread is the detector, deposit the
                    // report while still holding the lock: the root's
                    // secondary "aborted" unwind races this thread's
                    // own finish_task, and must not find `panic` empty.
                    // (The root's own panic already IS the primary.)
                    if current_task() != 0 {
                        st.panic.get_or_insert(report.clone());
                    }
                    self.cv.notify_all();
                    panic!("{report}");
                }
            }
        }
    }

    /// Hands the token back (the caller has already set its own run
    /// state), then parks until re-scheduled. Returns the caller's
    /// `wake_notified` flag.
    fn resched_and_park(&self, mut st: MutexGuard<'_, SimState>, me: TaskId) -> bool {
        self.pick_next(&mut st);
        self.cv.notify_all();
        loop {
            if st.dead {
                panic!(
                    "deltx-sim: simulation aborted (seed {}) — see the primary failure",
                    self.seed
                );
            }
            if st.current == Some(me) {
                return st.tasks.get(&me).expect("parked task").wake_notified;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks `me` finished, releases joiners, and passes the token on.
    fn finish_task(&self, me: TaskId, panic_msg: Option<String>) {
        let mut st = self.lock();
        if let Some(m) = panic_msg {
            st.panic.get_or_insert(m);
        }
        let done_ev = {
            let t = st.tasks.get_mut(&me).expect("finishing task");
            t.run = Run::Finished;
            t.done_ev
        };
        Self::notify_event(&mut st, done_ev);
        if !st.dead && st.current == Some(me) {
            self.pick_next(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks the calling task until `target` finishes.
    fn join_task(&self, target: TaskId) {
        let me = current_task();
        loop {
            let mut st = self.lock();
            if st.dead {
                panic!(
                    "deltx-sim: simulation aborted (seed {}) — see the primary failure",
                    self.seed
                );
            }
            let t = st.tasks.get(&target).expect("join target");
            if matches!(t.run, Run::Finished) {
                return;
            }
            let done_ev = t.done_ev;
            st.tasks.get_mut(&me).expect("joiner").run = Run::Waiting {
                ev: done_ev,
                deadline: None,
            };
            self.resched_and_park(st, me);
        }
    }
}

fn current_task() -> TaskId {
    CURRENT
        .with(|c| c.get())
        .expect("deltx-sim: runtime call from a thread that is not a simulation task")
}

fn panic_payload_str(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Resets the thread's task registration even on unwind.
struct TlsGuard;

impl Drop for TlsGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(None));
    }
}

/// The deterministic simulation runtime: implements [`Runtime`] over a
/// seeded one-task-at-a-time scheduler under virtual time. Construct
/// via [`VirtualRuntime::run`] (panic on failure) or
/// [`VirtualRuntime::run_cfg`] (failure as data, policy + trace
/// control), which register the calling thread as the root task.
pub struct VirtualRuntime {
    shared: Arc<SimShared>,
}

impl std::fmt::Debug for VirtualRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VirtualRuntime(seed {})", self.shared.seed)
    }
}

impl VirtualRuntime {
    /// Runs `f` as the root task of a fresh simulation seeded with
    /// `seed`. Every task `f` (transitively) spawns must be joined
    /// before it returns — dropping the engine does that. Panics from
    /// any task are re-raised here with the seed attached.
    pub fn run<T>(seed: u64, f: impl FnOnce(&Arc<VirtualRuntime>) -> T) -> T {
        let (out, _info) = Self::run_cfg(&SimConfig::random(seed), f);
        match out {
            Ok(v) => v,
            Err(fail) => fail.raise(),
        }
    }

    /// Like [`VirtualRuntime::run`], but under an explicit
    /// [`SimConfig`] (scheduling policy, trace recording), and with
    /// failures *captured* instead of panicking: a red run comes back
    /// as `Err(SimFailure)` alongside the [`SimRunInfo`] (trace,
    /// signatures, counters) — which is reported for red and green
    /// runs alike, so search drivers can mine failing schedules.
    pub fn run_cfg<T>(
        cfg: &SimConfig,
        f: impl FnOnce(&Arc<VirtualRuntime>) -> T,
    ) -> (Result<T, SimFailure>, SimRunInfo) {
        let seed = cfg.seed;
        let mut rng = seed ^ 0xA076_1D64_78BD_642F; // decorrelate from workload RNGs
        let mut policy = PolicyState::new(&cfg.policy, &mut rng);
        policy.on_task_created(&mut rng, 0);
        let shared = Arc::new(SimShared {
            seed,
            m: Mutex::new(SimState {
                rng,
                now: 0,
                current: Some(0),
                tasks: BTreeMap::new(),
                next_task: 1,
                events: BTreeMap::new(),
                next_event: 0,
                panic: None,
                dead: false,
                switches: 0,
                policy,
                trace: cfg.record_trace.then(Vec::new),
                signatures: BTreeSet::new(),
            }),
            cv: Condvar::new(),
        });
        {
            let mut st = shared.lock();
            let done_ev = SimShared::alloc_event(&mut st, Some(0));
            st.tasks.insert(
                0,
                Task {
                    name: "root".into(),
                    run: Run::Running,
                    wake_notified: false,
                    done_ev,
                },
            );
        }
        let rt = Arc::new(VirtualRuntime {
            shared: Arc::clone(&shared),
        });
        CURRENT.with(|c| c.set(Some(0)));
        let _tls = TlsGuard;
        let out = catch_unwind(AssertUnwindSafe(|| f(&rt)));

        let mut st = shared.lock();
        let task_panic = st.panic.take();
        let leaked: Vec<String> = st
            .tasks
            .iter()
            .filter(|(id, t)| **id != 0 && !matches!(t.run, Run::Finished))
            .map(|(_, t)| t.name.clone())
            .collect();
        if !leaked.is_empty() {
            // Wake the stranded threads so they unwind instead of
            // leaking parked forever — then fail loudly.
            st.dead = true;
            shared.cv.notify_all();
        }
        let info = SimRunInfo {
            trace: st.trace.take().map(|decisions| ScheduleTrace { decisions }),
            signatures: std::mem::take(&mut st.signatures),
            switches: st.switches,
            divergences: match &st.policy {
                PolicyState::Trace { divergences, .. } => *divergences,
                _ => 0,
            },
        };
        drop(st);
        let result = match out {
            Ok(v) => {
                if task_panic.is_some() || !leaked.is_empty() {
                    let message = match &task_panic {
                        Some(m) => format!("deltx-sim: task panicked (seed {seed}): {m}"),
                        None => format!(
                            "deltx-sim: tasks still live at end of run (seed {seed}): {leaked:?}"
                        ),
                    };
                    Err(SimFailure {
                        seed,
                        message,
                        task_panic,
                        leaked,
                        root_payload: None,
                    })
                } else {
                    Ok(v)
                }
            }
            Err(e) => {
                let message = panic_payload_str(e.as_ref());
                Err(SimFailure {
                    seed,
                    message,
                    task_panic,
                    leaked,
                    root_payload: Some(e),
                })
            }
        };
        (result, info)
    }

    /// The seed this simulation runs under.
    pub fn seed(&self) -> u64 {
        self.shared.seed
    }

    /// Scheduling decisions taken so far (a cheap determinism probe:
    /// two identical runs must agree on it).
    pub fn switches(&self) -> u64 {
        self.shared.lock().switches
    }
}

impl Runtime for VirtualRuntime {
    fn spawn(&self, name: &str, f: Box<dyn FnOnce() + Send>) -> TaskHandle {
        let shared = Arc::clone(&self.shared);
        let id = {
            let mut st = shared.lock();
            let id = st.next_task;
            st.next_task += 1;
            // Credit the done_ev to the new task itself, so a joiner's
            // wait-for edge points at the task being joined.
            let done_ev = SimShared::alloc_event(&mut st, Some(id));
            st.tasks.insert(
                id,
                Task {
                    name: name.to_string(),
                    run: Run::Ready,
                    wake_notified: false,
                    done_ev,
                },
            );
            let SimState { rng, policy, .. } = &mut *st;
            policy.on_task_created(rng, id);
            id
        };
        let body_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                CURRENT.with(|c| c.set(Some(id)));
                let _tls = TlsGuard;
                // Park until first scheduled; a dead sim releases us
                // without ever running the body.
                let scheduled = {
                    let mut st = body_shared.lock();
                    loop {
                        if st.dead {
                            break false;
                        }
                        if st.current == Some(id) {
                            break true;
                        }
                        st = body_shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let msg = if scheduled {
                    catch_unwind(AssertUnwindSafe(f))
                        .err()
                        .map(|e| panic_payload_str(e.as_ref()))
                } else {
                    None
                };
                body_shared.finish_task(id, msg);
            })
            .expect("deltx-sim: task thread spawn failed");
        TaskHandle::new(Box::new(move || shared.join_task(id)))
    }

    fn now(&self) -> Duration {
        Duration::from_nanos(self.shared.lock().now)
    }

    fn sleep(&self, d: Duration) {
        let me = current_task();
        let mut st = self.shared.lock();
        let until = st.now.saturating_add(d.as_nanos() as u64);
        st.tasks.get_mut(&me).expect("sleeper").run = Run::Sleeping { until };
        self.shared.resched_and_park(st, me);
    }

    fn yield_now(&self) {
        let me = current_task();
        let mut st = self.shared.lock();
        st.tasks.get_mut(&me).expect("yielder").run = Run::Ready;
        self.shared.resched_and_park(st, me);
    }

    fn event(&self) -> Arc<dyn RtEvent> {
        let creator = CURRENT.with(|c| c.get());
        let mut st = self.shared.lock();
        let id = SimShared::alloc_event(&mut st, creator);
        drop(st);
        Arc::new(SimEvent {
            shared: Arc::clone(&self.shared),
            id,
        })
    }

    fn emit(&self, kind: &'static str, value: u64) {
        self.shared.lock().signatures.insert((kind, value));
    }
}

/// Eventcount whose waits are scheduling points of the simulation.
struct SimEvent {
    shared: Arc<SimShared>,
    id: EventId,
}

impl RtEvent for SimEvent {
    fn prepare(&self) -> u64 {
        self.shared
            .lock()
            .events
            .get(&self.id)
            .expect("event")
            .epoch
    }

    fn wait(&self, key: u64) {
        let me = current_task();
        let mut st = self.shared.lock();
        if st.events.get(&self.id).expect("event").epoch != key {
            return; // notified between prepare and wait
        }
        st.tasks.get_mut(&me).expect("waiter").run = Run::Waiting {
            ev: self.id,
            deadline: None,
        };
        self.shared.resched_and_park(st, me);
    }

    fn wait_timeout(&self, key: u64, d: Duration) -> bool {
        let me = current_task();
        let mut st = self.shared.lock();
        if st.events.get(&self.id).expect("event").epoch != key {
            return true;
        }
        let deadline = st.now.saturating_add(d.as_nanos() as u64);
        st.tasks.get_mut(&me).expect("waiter").run = Run::Waiting {
            ev: self.id,
            deadline: Some(deadline),
        };
        self.shared.resched_and_park(st, me)
    }

    fn notify(&self) {
        // Not a scheduling point (mirrors condvar notify): readied
        // tasks run when the notifier next yields the token.
        let mut st = self.shared.lock();
        SimShared::notify_event(&mut st, self.id);
    }
}

/// Runs silenced while panic output is suppressed (see
/// [`silence_expected_panics`]).
static SILENCED_RUNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
static SILENCE_HOOK: std::sync::Once = std::sync::Once::new();

/// Suppresses panic-hook output (message + backtrace) for the
/// duration of `f` — process-wide, reference-counted, panic-safe.
///
/// Search and minimization execute hundreds of schedules that are
/// *supposed* to fail; every failing probe is a caught panic, and the
/// default hook would flood the log with backtraces for failures the
/// caller treats as data. The hook chain is installed once and
/// restores normal printing the moment the last silenced scope exits,
/// so a genuine unexpected panic elsewhere still reports normally.
pub fn silence_expected_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::sync::atomic::Ordering;
    SILENCE_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SILENCED_RUNS.load(Ordering::SeqCst) == 0 {
                prev(info);
            }
        }));
    });
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SILENCED_RUNS.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        }
    }
    SILENCED_RUNS.fetch_add(1, Ordering::SeqCst);
    let _g = Guard;
    f()
}
