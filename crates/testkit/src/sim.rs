//! The deterministic virtual scheduler behind [`VirtualRuntime`].
//!
//! # How one-at-a-time simulation works
//!
//! Every logical task (the root test body, each workload session, the
//! engine's GC task, the WAL's group-commit writer) runs on a real OS
//! thread — but at most **one** of them is ever runnable: the thread
//! whose task id equals `current`. Everyone else blocks on a condvar.
//! Whenever the running task reaches a scheduling point — a
//! [`Runtime::yield_now`], a sleep, an eventcount wait, a join — it
//! hands the token back to the scheduler, which picks the next task
//! from the ready set with a seeded RNG. Concurrency is therefore an
//! *explicit interleaving of logical steps*, chosen by `seed`, and
//! the same seed replays the same interleaving bit for bit.
//!
//! # Virtual time
//!
//! The clock ([`Runtime::now`]) only moves when nothing is runnable:
//! it then jumps straight to the earliest sleep/timeout deadline and
//! readies the tasks that deadline releases. Timers are exact, idle
//! time is free, and a "2 ms" GC interval elapses in microseconds of
//! wall time. The model is a machine that is infinitely fast between
//! timer fires — so background work (GC ticks) happens exactly when
//! the workload leaves idle gaps (think time), never "by luck".
//!
//! # Why the engine stays deterministic under this scheduler
//!
//! No engine or WAL code path blocks, sleeps, or yields while holding
//! a shard or log lock (waits happen after locks are released — see
//! the commit path), so the std mutexes inside the engine are always
//! uncontended here and never order tasks. All cross-task ordering
//! flows through this scheduler's seeded choices; everything else in
//! the engine is a pure function of that order (hash-map iteration
//! order can vary between runs, but it only feeds order-insensitive
//! decisions — set membership, bitmask fixpoints, reachability — a
//! property the determinism self-test pins down).
//!
//! # Failure surfaces
//!
//! A deadlock (no runnable task, no pending timer, live tasks
//! remaining) panics with the seed and a task-state dump. A panic in
//! any task is caught, recorded, and re-raised from
//! [`VirtualRuntime::run`] with the seed attached — a red run is
//! always replayable by its seed alone.

use deltx_runtime::{RtEvent, Runtime, TaskHandle};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

type TaskId = usize;
type EventId = usize;

thread_local! {
    /// Which simulation task this OS thread carries (None off-task).
    static CURRENT: Cell<Option<TaskId>> = const { Cell::new(None) };
}

/// SplitMix64: the scheduler's only randomness, advanced once per
/// scheduling decision.
fn next_rng(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where a task stands with the scheduler.
enum Run {
    /// Holds the token (at most one task at a time).
    Running,
    /// Eligible for the next scheduling decision.
    Ready,
    /// Off the clock until virtual time reaches `until`.
    Sleeping { until: u64 },
    /// Parked on an eventcount, optionally with a deadline.
    Waiting { ev: EventId, deadline: Option<u64> },
    /// Done; joiners have been released.
    Finished,
}

impl Run {
    fn label(&self) -> String {
        match self {
            Run::Running => "running".into(),
            Run::Ready => "ready".into(),
            Run::Sleeping { until } => format!("sleeping until {until}ns"),
            Run::Waiting { ev, deadline, .. } => match deadline {
                Some(d) => format!("waiting on ev{ev} until {d}ns"),
                None => format!("waiting on ev{ev}"),
            },
            Run::Finished => "finished".into(),
        }
    }
}

struct Task {
    name: String,
    run: Run,
    /// After a Waiting task is readied: `true` if a notify did it,
    /// `false` if its deadline expired. Read back by `wait_timeout`.
    wake_notified: bool,
    /// Bumped when this task finishes; joiners wait on it.
    done_ev: EventId,
}

struct SimState {
    rng: u64,
    /// Virtual nanoseconds since the simulation started.
    now: u64,
    current: Option<TaskId>,
    tasks: BTreeMap<TaskId, Task>,
    next_task: TaskId,
    /// Eventcount epochs.
    events: BTreeMap<EventId, u64>,
    next_event: EventId,
    /// First panic payload from any task (re-raised at run end).
    panic: Option<String>,
    /// The simulation aborted (deadlock or propagated panic); every
    /// parked thread unwinds instead of waiting forever.
    dead: bool,
    /// Scheduling decisions taken (diagnostic).
    switches: u64,
}

struct SimShared {
    seed: u64,
    m: Mutex<SimState>,
    cv: Condvar,
}

impl SimShared {
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn alloc_event(st: &mut SimState) -> EventId {
        let id = st.next_event;
        st.next_event += 1;
        st.events.insert(id, 0);
        id
    }

    /// Bumps `ev`'s epoch and readies every task parked on it.
    fn notify_event(st: &mut SimState, ev: EventId) {
        if let Some(e) = st.events.get_mut(&ev) {
            *e = e.wrapping_add(1);
        }
        for t in st.tasks.values_mut() {
            if let Run::Waiting { ev: we, .. } = t.run {
                if we == ev {
                    t.run = Run::Ready;
                    t.wake_notified = true;
                }
            }
        }
    }

    /// Picks the next task to hold the token, advancing virtual time
    /// when nothing is ready. Panics (after marking the sim dead) on
    /// deadlock: live tasks exist but none can ever run again.
    fn pick_next(&self, st: &mut SimState) {
        st.current = None;
        loop {
            let ready: Vec<TaskId> = st
                .tasks
                .iter()
                .filter(|(_, t)| matches!(t.run, Run::Ready))
                .map(|(id, _)| *id)
                .collect();
            if !ready.is_empty() {
                let pick = ready[(next_rng(&mut st.rng) % ready.len() as u64) as usize];
                st.tasks.get_mut(&pick).expect("picked task").run = Run::Running;
                st.current = Some(pick);
                st.switches += 1;
                return;
            }
            // Nothing ready: jump the clock to the earliest deadline.
            let next_wake = st
                .tasks
                .values()
                .filter_map(|t| match t.run {
                    Run::Sleeping { until } => Some(until),
                    Run::Waiting {
                        deadline: Some(d), ..
                    } => Some(d),
                    _ => None,
                })
                .min();
            match next_wake {
                Some(w) => {
                    st.now = st.now.max(w);
                    let now = st.now;
                    for t in st.tasks.values_mut() {
                        let expired = match t.run {
                            Run::Sleeping { until } => until <= now,
                            Run::Waiting {
                                deadline: Some(d), ..
                            } => d <= now,
                            _ => false,
                        };
                        if expired {
                            t.run = Run::Ready;
                            t.wake_notified = false;
                        }
                    }
                }
                None => {
                    if st.tasks.values().all(|t| matches!(t.run, Run::Finished)) {
                        // Everyone is done; no token needed.
                        return;
                    }
                    st.dead = true;
                    let dump: Vec<String> = st
                        .tasks
                        .iter()
                        .map(|(id, t)| format!("  task {id} `{}`: {}", t.name, t.run.label()))
                        .collect();
                    self.cv.notify_all();
                    panic!(
                        "deltx-sim DEADLOCK at t={}ns (seed {}): no runnable task and no \
                         pending timer — replay with DELTX_SEED={}\n{}",
                        st.now,
                        self.seed,
                        self.seed,
                        dump.join("\n")
                    );
                }
            }
        }
    }

    /// Hands the token back (the caller has already set its own run
    /// state), then parks until re-scheduled. Returns the caller's
    /// `wake_notified` flag.
    fn resched_and_park(&self, mut st: MutexGuard<'_, SimState>, me: TaskId) -> bool {
        self.pick_next(&mut st);
        self.cv.notify_all();
        loop {
            if st.dead {
                panic!(
                    "deltx-sim: simulation aborted (seed {}) — see the primary failure",
                    self.seed
                );
            }
            if st.current == Some(me) {
                return st.tasks.get(&me).expect("parked task").wake_notified;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks `me` finished, releases joiners, and passes the token on.
    fn finish_task(&self, me: TaskId, panic_msg: Option<String>) {
        let mut st = self.lock();
        if let Some(m) = panic_msg {
            st.panic.get_or_insert(m);
        }
        let done_ev = {
            let t = st.tasks.get_mut(&me).expect("finishing task");
            t.run = Run::Finished;
            t.done_ev
        };
        Self::notify_event(&mut st, done_ev);
        if !st.dead && st.current == Some(me) {
            self.pick_next(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks the calling task until `target` finishes.
    fn join_task(&self, target: TaskId) {
        let me = current_task();
        loop {
            let mut st = self.lock();
            if st.dead {
                panic!(
                    "deltx-sim: simulation aborted (seed {}) — see the primary failure",
                    self.seed
                );
            }
            let t = st.tasks.get(&target).expect("join target");
            if matches!(t.run, Run::Finished) {
                return;
            }
            let done_ev = t.done_ev;
            st.tasks.get_mut(&me).expect("joiner").run = Run::Waiting {
                ev: done_ev,
                deadline: None,
            };
            self.resched_and_park(st, me);
        }
    }
}

fn current_task() -> TaskId {
    CURRENT
        .with(|c| c.get())
        .expect("deltx-sim: runtime call from a thread that is not a simulation task")
}

fn panic_payload(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Resets the thread's task registration even on unwind.
struct TlsGuard;

impl Drop for TlsGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(None));
    }
}

/// The deterministic simulation runtime: implements [`Runtime`] over a
/// seeded one-task-at-a-time scheduler under virtual time. Construct
/// via [`VirtualRuntime::run`], which registers the calling thread as
/// the root task.
pub struct VirtualRuntime {
    shared: Arc<SimShared>,
}

impl std::fmt::Debug for VirtualRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VirtualRuntime(seed {})", self.shared.seed)
    }
}

impl VirtualRuntime {
    /// Runs `f` as the root task of a fresh simulation seeded with
    /// `seed`. Every task `f` (transitively) spawns must be joined
    /// before it returns — dropping the engine does that. Panics from
    /// any task are re-raised here with the seed attached.
    pub fn run<T>(seed: u64, f: impl FnOnce(&Arc<VirtualRuntime>) -> T) -> T {
        let shared = Arc::new(SimShared {
            seed,
            m: Mutex::new(SimState {
                rng: seed ^ 0xA076_1D64_78BD_642F, // decorrelate from workload RNGs
                now: 0,
                current: Some(0),
                tasks: BTreeMap::new(),
                next_task: 1,
                events: BTreeMap::new(),
                next_event: 0,
                panic: None,
                dead: false,
                switches: 0,
            }),
            cv: Condvar::new(),
        });
        {
            let mut st = shared.lock();
            let done_ev = SimShared::alloc_event(&mut st);
            st.tasks.insert(
                0,
                Task {
                    name: "root".into(),
                    run: Run::Running,
                    wake_notified: false,
                    done_ev,
                },
            );
        }
        let rt = Arc::new(VirtualRuntime {
            shared: Arc::clone(&shared),
        });
        CURRENT.with(|c| c.set(Some(0)));
        let _tls = TlsGuard;
        let out = catch_unwind(AssertUnwindSafe(|| f(&rt)));

        let mut st = shared.lock();
        let task_panic = st.panic.take();
        let leaked: Vec<String> = st
            .tasks
            .iter()
            .filter(|(id, t)| **id != 0 && !matches!(t.run, Run::Finished))
            .map(|(_, t)| t.name.clone())
            .collect();
        if !leaked.is_empty() {
            // Wake the stranded threads so they unwind instead of
            // leaking parked forever — then fail loudly.
            st.dead = true;
            shared.cv.notify_all();
        }
        drop(st);
        match out {
            Ok(v) => {
                if let Some(m) = task_panic {
                    panic!("deltx-sim: task panicked (seed {seed}): {m}");
                }
                if !leaked.is_empty() {
                    panic!(
                        "deltx-sim: tasks still live at end of run (seed {seed}): {leaked:?} \
                         — join every spawned task (dropping the engine joins its tasks)"
                    );
                }
                v
            }
            Err(e) => {
                if let Some(m) = task_panic {
                    eprintln!("deltx-sim: first task failure (seed {seed}): {m}");
                }
                std::panic::resume_unwind(e);
            }
        }
    }

    /// The seed this simulation runs under.
    pub fn seed(&self) -> u64 {
        self.shared.seed
    }

    /// Scheduling decisions taken so far (a cheap determinism probe:
    /// two identical runs must agree on it).
    pub fn switches(&self) -> u64 {
        self.shared.lock().switches
    }
}

impl Runtime for VirtualRuntime {
    fn spawn(&self, name: &str, f: Box<dyn FnOnce() + Send>) -> TaskHandle {
        let shared = Arc::clone(&self.shared);
        let id = {
            let mut st = shared.lock();
            let id = st.next_task;
            st.next_task += 1;
            let done_ev = SimShared::alloc_event(&mut st);
            st.tasks.insert(
                id,
                Task {
                    name: name.to_string(),
                    run: Run::Ready,
                    wake_notified: false,
                    done_ev,
                },
            );
            id
        };
        let body_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                CURRENT.with(|c| c.set(Some(id)));
                let _tls = TlsGuard;
                // Park until first scheduled; a dead sim releases us
                // without ever running the body.
                let scheduled = {
                    let mut st = body_shared.lock();
                    loop {
                        if st.dead {
                            break false;
                        }
                        if st.current == Some(id) {
                            break true;
                        }
                        st = body_shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let msg = if scheduled {
                    catch_unwind(AssertUnwindSafe(f)).err().map(panic_payload)
                } else {
                    None
                };
                body_shared.finish_task(id, msg);
            })
            .expect("deltx-sim: task thread spawn failed");
        TaskHandle::new(Box::new(move || shared.join_task(id)))
    }

    fn now(&self) -> Duration {
        Duration::from_nanos(self.shared.lock().now)
    }

    fn sleep(&self, d: Duration) {
        let me = current_task();
        let mut st = self.shared.lock();
        let until = st.now.saturating_add(d.as_nanos() as u64);
        st.tasks.get_mut(&me).expect("sleeper").run = Run::Sleeping { until };
        self.shared.resched_and_park(st, me);
    }

    fn yield_now(&self) {
        let me = current_task();
        let mut st = self.shared.lock();
        st.tasks.get_mut(&me).expect("yielder").run = Run::Ready;
        self.shared.resched_and_park(st, me);
    }

    fn event(&self) -> Arc<dyn RtEvent> {
        let mut st = self.shared.lock();
        let id = SimShared::alloc_event(&mut st);
        drop(st);
        Arc::new(SimEvent {
            shared: Arc::clone(&self.shared),
            id,
        })
    }
}

/// Eventcount whose waits are scheduling points of the simulation.
struct SimEvent {
    shared: Arc<SimShared>,
    id: EventId,
}

impl RtEvent for SimEvent {
    fn prepare(&self) -> u64 {
        *self.shared.lock().events.get(&self.id).expect("event")
    }

    fn wait(&self, key: u64) {
        let me = current_task();
        let mut st = self.shared.lock();
        if *st.events.get(&self.id).expect("event") != key {
            return; // notified between prepare and wait
        }
        st.tasks.get_mut(&me).expect("waiter").run = Run::Waiting {
            ev: self.id,
            deadline: None,
        };
        self.shared.resched_and_park(st, me);
    }

    fn wait_timeout(&self, key: u64, d: Duration) -> bool {
        let me = current_task();
        let mut st = self.shared.lock();
        if *st.events.get(&self.id).expect("event") != key {
            return true;
        }
        let deadline = st.now.saturating_add(d.as_nanos() as u64);
        st.tasks.get_mut(&me).expect("waiter").run = Run::Waiting {
            ev: self.id,
            deadline: Some(deadline),
        };
        self.shared.resched_and_park(st, me)
    }

    fn notify(&self) {
        // Not a scheduling point (mirrors condvar notify): readied
        // tasks run when the notifier next yields the token.
        let mut st = self.shared.lock();
        SimShared::notify_event(&mut st, self.id);
    }
}
