//! Declarative workload specs and the simulation runner.
//!
//! A [`WorkloadSpec`] describes a whole concurrent scenario — session
//! count, entity universe, access-pattern [`Profile`], client-abort
//! cadence, virtual think time, durability, an optional [`FaultPlan`] —
//! as plain data. [`run_spec`] executes it under a [`VirtualRuntime`]
//! seeded from the caller: every session, the engine's GC task and the
//! WAL writer become simulation tasks, the interleaving is chosen by
//! the seed, and the run finishes with the full oracle battery from
//! the stress suite (lockstep full-scheduler replay, ground-truth CSR,
//! balance conservation, the live-graph bound). The returned
//! [`SimReport`] is a pure function of `(spec, seed)` — the
//! determinism self-test runs every spec twice and demands equality,
//! fingerprint included.

use crate::sim::VirtualRuntime;
use deltx_core::CgState;
use deltx_engine::{
    CrashPoint, DurabilityConfig, Engine, EngineConfig, Event, GcPolicy, OsRuntime, Runtime,
    Session, TaskHandle,
};
use deltx_model::{Schedule, TxnId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How each session picks the entities a transaction touches.
#[derive(Clone, Copy, Debug)]
pub enum Profile {
    /// The stress suite's banking mix: transfer between two accounts,
    /// `cross_pct`% of pairs spanning shards (uniform), the rest
    /// confined to one shard (same residue class).
    Transfer {
        /// Percentage of transactions whose two accounts live in
        /// different shards.
        cross_pct: u32,
    },
    /// The `gc_escalation` bench's skew: `cross_pct`% of traffic hits
    /// one hot cross-shard pair (entity 0 in shard 0 ↔ entity 1 in
    /// shard 1); the rest is uniform single-shard traffic over the
    /// remaining shards.
    HotKeySkew {
        /// Percentage of transactions on the hot pair.
        cross_pct: u32,
    },
    /// Long analytics readers (each scans `scan` entities with think
    /// time between transactions, then rolls back) pinning versions
    /// while the other sessions run the transfer mix — the paper's
    /// Example 1 shape, where careless deletion grows the graph.
    LongReaders {
        /// Sessions (out of `WorkloadSpec::sessions`) that scan.
        readers: usize,
        /// Entities each scan reads before rolling back.
        scan: u32,
    },
    /// §5-style batch jobs: each transaction reads a contiguous block
    /// of entities (its declared access set) and rewrites the whole
    /// block atomically — values rotate within the block, so the
    /// global sum is conserved.
    Batch {
        /// Entities per block.
        block: u32,
    },
    /// Read-mostly fanout: every transaction reads `fan` entities;
    /// one in ten also bumps a counter entity. Balance conservation
    /// does not apply (writes are increments, not transfers).
    ReadMostly {
        /// Entities read per transaction.
        fan: u32,
    },
    /// Adversarial cross-shard chains: each transaction reads one
    /// entity in each of `len` *consecutive* shards and moves value
    /// from the first to the last, rewriting the middle entities
    /// unchanged — so every commit is a multi-shard escalation whose
    /// closure overlaps its neighbors', the worst case for the
    /// partial-lock planner.
    CrossShardChain {
        /// Shards each chain spans.
        len: usize,
    },
}

/// A fault to inject mid-run.
#[derive(Clone, Copy, Debug)]
pub enum FaultPlan {
    /// Run to completion unharmed.
    None,
    /// Arm `point` on the WAL once `after_commits` commits have been
    /// acknowledged, then let the surviving sessions drain against
    /// the crashed log; the runner recovers afterwards and checks the
    /// recovered image. Requires `durable`.
    Crash {
        /// Acknowledged commits before the crash fires.
        after_commits: u64,
        /// Which crash point to arm.
        point: CrashPoint,
    },
    /// Reserved: a network partition between session groups. The
    /// runner rejects it with [`SimError::Unsupported`] until a
    /// distributed layer exists to partition.
    Partition {
        /// Acknowledged commits before the partition starts.
        at_commits: u64,
        /// Virtual nanoseconds until it heals.
        heal_after_ns: u64,
    },
}

/// Which oracles to run after the workload drains.
#[derive(Clone, Copy, Debug)]
pub struct Checks {
    /// Replay the recorded history through a full (never-deleting)
    /// `CgState` and demand outcome-for-outcome equality (Theorem 2),
    /// then `check_invariants`.
    pub oracle_replay: bool,
    /// Ground-truth conflict-serializability of the accepted
    /// subschedule (`deltx_model::history::is_csr`).
    pub csr: bool,
    /// The sum of all balances is conserved (transfers only move
    /// value). Turn off for profiles whose writes are not transfers.
    pub balance_sum: bool,
    /// Peak and final live graph stay within
    /// `sessions + 4·entities + 16`.
    pub live_graph_bound: bool,
}

impl Checks {
    /// Everything on — the default for conserving profiles.
    pub fn all() -> Self {
        Checks {
            oracle_replay: true,
            csr: true,
            balance_sum: true,
            live_graph_bound: true,
        }
    }
}

/// A complete declarative scenario. See the zoo ([`crate::zoo`]) for
/// the stock instances.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Scenario name (reports, summaries, failure messages).
    pub name: &'static str,
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Transactions each session attempts.
    pub txns_per_session: usize,
    /// Entity universe size.
    pub entities: u32,
    /// Engine shards.
    pub shards: usize,
    /// Access pattern.
    pub profile: Profile,
    /// Client rollback cadence: every `abort_every`-th transaction is
    /// rolled back after its reads (0 = never).
    pub abort_every: usize,
    /// Virtual think time between a session's transactions, in
    /// nanoseconds. Must be nonzero for background GC to run: the
    /// virtual clock only advances when every task is idle.
    pub think_ns: u64,
    /// Background GC tick, in virtual microseconds.
    pub gc_interval_us: u64,
    /// Run with the write-ahead log (group commit under the sim).
    pub durable: bool,
    /// Fault to inject.
    pub fault: FaultPlan,
    /// Oracles to run.
    pub checks: Checks,
}

/// What a simulated run produced. Everything here is virtual-time or
/// count data, so two runs of the same `(spec, seed)` must compare
/// equal — the determinism self-test asserts exactly that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Scenario name.
    pub name: &'static str,
    /// The seed the interleaving was drawn from.
    pub seed: u64,
    /// Commits acknowledged to clients.
    pub commits: u64,
    /// Scheduler + durability failures observed by clients.
    pub failures: u64,
    /// Client rollbacks (including reader scans).
    pub client_aborts: u64,
    /// GC deletions over the run.
    pub gc_deletions: u64,
    /// Peak live-graph nodes sampled by the monitor task.
    pub peak_nodes: usize,
    /// The `O(active)` bound the peak was checked against (0 when the
    /// check is off).
    pub graph_bound: usize,
    /// Virtual nanoseconds the run spanned.
    pub virtual_ns: u64,
    /// Scheduling decisions the simulator took.
    pub switches: u64,
    /// FNV-1a digest of the recorded history, final entity values,
    /// and counters — the bit-identical-replay witness.
    pub fingerprint: u64,
    /// Commits replayed by recovery (crash plans only).
    pub commits_replayed: u64,
}

/// Why a spec could not run.
#[derive(Debug)]
pub enum SimError {
    /// The spec asks for machinery the runner does not have yet.
    Unsupported(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unsupported(m) => write!(f, "unsupported workload: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x100_0000_01B3);
    }
}

/// Spawns a task that gets a handle back to the runtime (for think
/// time) — a thin sugar over [`Runtime::spawn`]'s `'static` closure.
fn spawn_on(
    rt: &Arc<VirtualRuntime>,
    name: &str,
    f: impl FnOnce(&Arc<VirtualRuntime>) + Send + 'static,
) -> TaskHandle {
    let inner = Arc::clone(rt);
    rt.spawn(name, Box::new(move || f(&inner)))
}

/// What one transaction attempt came to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TxnOutcome {
    /// Commit acknowledged.
    Committed,
    /// The client rolled it back on purpose (cadence or pure read).
    RolledBack,
    /// A scheduler or durability abort.
    Failed,
}

/// One transaction of the given profile.
fn run_txn(
    e: &Engine,
    spec: &WorkloadSpec,
    rng: &mut StdRng,
    tid: usize,
    i: usize,
    is_reader: bool,
) -> TxnOutcome {
    let n = spec.entities;
    let shards = spec.shards as u32;
    let span = (n / shards).max(1);
    let mut t = e.begin();
    let rollback = spec.abort_every != 0 && i.is_multiple_of(spec.abort_every);

    if is_reader {
        // Long analytics reader: scan a window, then roll back.
        let scan = match spec.profile {
            Profile::LongReaders { scan, .. } => scan,
            _ => 4,
        };
        let base = rng.gen_range(0..n);
        for k in 0..scan {
            if t.read((base + k) % n).is_err() {
                return TxnOutcome::Failed;
            }
        }
        t.abort();
        return TxnOutcome::RolledBack;
    }

    match spec.profile {
        Profile::Transfer { .. } | Profile::LongReaders { .. } => {
            let cross_pct = match spec.profile {
                Profile::Transfer { cross_pct } => cross_pct,
                _ => 30,
            };
            let (x, y) = if rng.gen_range(0u32..100) < cross_pct {
                (rng.gen_range(0..n), rng.gen_range(0..n))
            } else {
                let s = rng.gen_range(0..shards);
                (
                    (s + shards * rng.gen_range(0..span)) % n,
                    (s + shards * rng.gen_range(0..span)) % n,
                )
            };
            transfer(t, rng, rollback, x, y)
        }
        Profile::HotKeySkew { cross_pct } => {
            let (x, y) = if rng.gen_range(0u32..100) < cross_pct {
                (0, 1 % n) // the hot shard-0 ↔ shard-1 pair
            } else {
                let s = if shards > 2 {
                    2 + rng.gen_range(0..shards - 2)
                } else {
                    rng.gen_range(0..shards)
                };
                (
                    (s + shards * rng.gen_range(0..span)) % n,
                    (s + shards * rng.gen_range(0..span)) % n,
                )
            };
            transfer(t, rng, rollback, x, y)
        }
        Profile::Batch { block } => {
            let block = block.clamp(1, n);
            let blocks = (n / block).max(1);
            let base = (((tid + i) as u32) % blocks) * block;
            let mut vals = Vec::with_capacity(block as usize);
            for k in 0..block {
                let x = (base + k) % n;
                match t.read(x) {
                    Ok(v) => vals.push((x, v)),
                    Err(_) => return TxnOutcome::Failed,
                }
            }
            if rollback {
                t.abort();
                return TxnOutcome::RolledBack;
            }
            // Rotate values within the block: conserves the sum.
            let first = vals[0].1;
            for w in 0..vals.len() {
                let next = if w + 1 < vals.len() {
                    vals[w + 1].1
                } else {
                    first
                };
                t.write(vals[w].0, next);
            }
            commit_outcome(t)
        }
        Profile::ReadMostly { fan } => {
            for _ in 0..fan {
                if t.read(rng.gen_range(0..n)).is_err() {
                    return TxnOutcome::Failed;
                }
            }
            if rollback || !i.is_multiple_of(10) {
                t.abort(); // pure read txn: nothing to install
                return TxnOutcome::RolledBack;
            }
            let x = rng.gen_range(0..n);
            let Ok(v) = t.read(x) else {
                return TxnOutcome::Failed;
            };
            t.write(x, v + 1); // counter bump: not a transfer
            commit_outcome(t)
        }
        Profile::CrossShardChain { len } => {
            let len = len.clamp(2, spec.shards) as u32;
            let s0 = rng.gen_range(0..shards);
            let mut chain: Vec<(u32, i64)> = Vec::with_capacity(len as usize);
            for k in 0..len {
                let x = ((s0 + k) % shards + shards * rng.gen_range(0..span)) % n;
                if chain.iter().any(|&(px, _)| px == x) {
                    continue; // tiny universes can fold the chain
                }
                match t.read(x) {
                    Ok(v) => chain.push((x, v)),
                    Err(_) => return TxnOutcome::Failed,
                }
            }
            if rollback || chain.len() < 2 {
                t.abort();
                return TxnOutcome::RolledBack;
            }
            let amount = rng.gen_range(1i64..10);
            let last = chain.len() - 1;
            // Move value down the whole chain; middle entities are
            // rewritten unchanged so every hop is a write conflict.
            for (k, &(x, v)) in chain.iter().enumerate() {
                let nv = if k == 0 {
                    v - amount
                } else if k == last {
                    v + amount
                } else {
                    v
                };
                t.write(x, nv);
            }
            commit_outcome(t)
        }
    }
}

fn transfer(mut t: Session, rng: &mut StdRng, rollback: bool, x: u32, y: u32) -> TxnOutcome {
    let Ok(a) = t.read(x) else {
        return TxnOutcome::Failed;
    };
    let b = if y != x {
        match t.read(y) {
            Ok(v) => v,
            Err(_) => return TxnOutcome::Failed,
        }
    } else {
        0
    };
    if rollback {
        t.abort();
        return TxnOutcome::RolledBack;
    }
    let amount = rng.gen_range(1i64..10);
    if y != x {
        t.write(x, a - amount);
        t.write(y, b + amount);
    } else {
        t.write(x, a);
    }
    if t.commit().is_ok() {
        TxnOutcome::Committed
    } else {
        TxnOutcome::Failed
    }
}

fn commit_outcome(t: Session) -> TxnOutcome {
    if t.commit().is_ok() {
        TxnOutcome::Committed
    } else {
        TxnOutcome::Failed
    }
}

fn durability(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig {
        // Small segments so GC-driven truncation triggers in-run.
        segment_bytes: 16 * 1024,
        fsync: false,
        ..DurabilityConfig::new(dir.to_path_buf())
    }
}

/// Runs `spec` under a fresh [`VirtualRuntime`] seeded with `seed` and
/// returns the deterministic [`SimReport`]. Panics (with the spec name
/// and seed in the message) if any enabled oracle fails.
pub fn run_spec(spec: &WorkloadSpec, seed: u64) -> Result<SimReport, SimError> {
    if let FaultPlan::Partition { .. } = spec.fault {
        return Err(SimError::Unsupported(
            "FaultPlan::Partition needs a distributed layer to partition; \
             the variant exists so zoo specs can carry it, but no runner \
             does yet"
                .into(),
        ));
    }
    if matches!(spec.fault, FaultPlan::Crash { .. }) && !spec.durable {
        return Err(SimError::Unsupported(
            "FaultPlan::Crash requires `durable: true` (the crash is armed on the WAL)".into(),
        ));
    }

    let wal_dir: Option<PathBuf> = spec.durable.then(|| {
        std::env::temp_dir().join(format!(
            "deltx-sim-{}-{seed}-{}",
            spec.name,
            std::process::id()
        ))
    });
    if let Some(d) = &wal_dir {
        let _ = std::fs::remove_dir_all(d);
    }

    let report = VirtualRuntime::run(seed, |rt| {
        let engine = Arc::new(Engine::new(EngineConfig {
            shards: spec.shards,
            gc: GcPolicy::Noncurrent,
            gc_interval: Duration::from_micros(spec.gc_interval_us.max(1)),
            background_gc: true,
            record_history: true,
            partial_escalation: true,
            partial_gc: true,
            durability: wal_dir.as_deref().map(durability),
            runtime: Arc::clone(rt) as Arc<dyn Runtime>,
        }));

        let commits = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let client_aborts = Arc::new(AtomicU64::new(0));
        let crash_armed = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let peak = Arc::new(AtomicUsize::new(0));

        // Monitor task: samples the live graph at a fixed virtual
        // cadence — deterministic because the schedule is.
        let mon = {
            let (e, stop, peak) = (Arc::clone(&engine), Arc::clone(&stop), Arc::clone(&peak));
            spawn_on(rt, "sim-monitor", move |rtm| loop {
                rtm.sleep(Duration::from_micros(200));
                peak.fetch_max(e.graph_size().nodes, Ordering::Relaxed);
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            })
        };

        let readers = match spec.profile {
            Profile::LongReaders { readers, .. } => readers.min(spec.sessions),
            _ => 0,
        };

        let mut handles = Vec::with_capacity(spec.sessions);
        for tid in 0..spec.sessions {
            let e = Arc::clone(&engine);
            let spec2 = spec.clone();
            let (commits, failures, client_aborts, crash_armed) = (
                Arc::clone(&commits),
                Arc::clone(&failures),
                Arc::clone(&client_aborts),
                Arc::clone(&crash_armed),
            );
            let is_reader = tid < readers;
            handles.push(spawn_on(rt, &format!("session-{tid}"), move |rts| {
                let mut rng = StdRng::seed_from_u64(seed ^ (0x5E55_0000 + tid as u64));
                for i in 0..spec2.txns_per_session {
                    match run_txn(&e, &spec2, &mut rng, tid, i, is_reader) {
                        TxnOutcome::Committed => {
                            let c = commits.fetch_add(1, Ordering::SeqCst) + 1;
                            if let FaultPlan::Crash {
                                after_commits,
                                point,
                            } = spec2.fault
                            {
                                if c >= after_commits && !crash_armed.swap(true, Ordering::SeqCst) {
                                    e.inject_crash(point);
                                }
                            }
                        }
                        TxnOutcome::RolledBack => {
                            client_aborts.fetch_add(1, Ordering::SeqCst);
                        }
                        TxnOutcome::Failed => {
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    if spec2.think_ns > 0 {
                        rts.sleep(Duration::from_nanos(spec2.think_ns));
                    }
                }
            }));
        }
        for h in handles {
            h.join();
        }
        stop.store(true, Ordering::SeqCst);
        mon.join();

        let crashed = crash_armed.load(Ordering::SeqCst);
        if !crashed {
            engine.gc_sweep();
        }
        let m = engine.metrics();
        let history = engine.recorded_history().expect("recording enabled");
        let finals: Vec<i64> = (0..spec.entities).map(|x| engine.peek(x)).collect();
        let peak_nodes = peak.load(Ordering::Relaxed).max(m.live_txns as usize);
        let virtual_ns = rt.now().as_nanos() as u64;

        // ---- Oracles -------------------------------------------------
        let mut full = CgState::new();
        if spec.checks.oracle_replay || spec.checks.csr {
            for ev in &history.events {
                match ev {
                    Event::Step { step, outcome } => {
                        let got = full.apply(step).unwrap_or_else(|err| {
                            panic!(
                                "[{} seed {seed}] replay rejected {step:?}: {err}",
                                spec.name
                            )
                        });
                        assert_eq!(
                            got, *outcome,
                            "[{} seed {seed}] engine diverged from the full scheduler on {step:?}",
                            spec.name
                        );
                    }
                    Event::ClientAbort(t) => full.abort_txn(*t).expect("client abort of live txn"),
                }
            }
            full.check_invariants();
        }
        if spec.checks.csr {
            let mut aborted: HashSet<TxnId> = full.aborted_txns().clone();
            aborted.extend(history.client_aborted());
            let accepted =
                Schedule::from_steps(history.accepted_steps()).accepted_subschedule(&aborted);
            assert!(
                deltx_model::history::is_csr(&accepted),
                "[{} seed {seed}] accepted subschedule must be CSR",
                spec.name
            );
        }
        if spec.checks.balance_sum && !crashed {
            let sum: i64 = finals.iter().sum();
            assert_eq!(
                sum, 0,
                "[{} seed {seed}] transfers must conserve the total balance",
                spec.name
            );
        }
        let graph_bound = if spec.checks.live_graph_bound {
            let bound = spec.sessions + 4 * spec.entities as usize + 16;
            assert!(
                peak_nodes <= bound,
                "[{} seed {seed}] peak live graph {peak_nodes} exceeded O(active) bound {bound}",
                spec.name
            );
            bound
        } else {
            0
        };

        // ---- Fingerprint --------------------------------------------
        let mut fp: u64 = 0xCBF2_9CE4_8422_2325;
        for ev in &history.events {
            match ev {
                Event::Step { step, outcome } => {
                    fnv1a(&mut fp, format!("{step:?}|{outcome:?};").as_bytes())
                }
                Event::ClientAbort(t) => fnv1a(&mut fp, format!("CA{t:?};").as_bytes()),
            }
        }
        for v in &finals {
            fnv1a(&mut fp, &v.to_le_bytes());
        }
        for c in [m.commits, m.aborts_scheduler, m.aborts_voluntary] {
            fnv1a(&mut fp, &c.to_le_bytes());
        }

        drop(engine); // joins the GC task and the WAL writer in-sim
        SimReport {
            name: spec.name,
            seed,
            commits: commits.load(Ordering::SeqCst),
            failures: failures.load(Ordering::SeqCst),
            client_aborts: client_aborts.load(Ordering::SeqCst),
            gc_deletions: m.gc_deletions,
            peak_nodes,
            graph_bound,
            virtual_ns,
            switches: rt.switches(),
            fingerprint: fp,
            commits_replayed: 0,
        }
    });

    let report = match (&spec.fault, &wal_dir) {
        (FaultPlan::Crash { .. }, Some(dir)) => {
            // Recovery pass (outside the sim: replay is sequential,
            // and the OS runtime's GC/writer tasks join on drop).
            let (recovered, rec) = Engine::open(EngineConfig {
                shards: spec.shards,
                background_gc: false,
                durability: Some(durability(dir)),
                runtime: OsRuntime::shared(),
                ..EngineConfig::default()
            })
            .unwrap_or_else(|e| panic!("[{} seed {seed}] recovery must succeed: {e:?}", spec.name));
            if spec.checks.balance_sum {
                let sum: i64 = (0..spec.entities).map(|x| recovered.peek(x)).sum();
                assert_eq!(
                    sum, 0,
                    "[{} seed {seed}] recovered image must conserve the balance sum",
                    spec.name
                );
            }
            let mut fp = report.fingerprint;
            for x in 0..spec.entities {
                fnv1a(&mut fp, &recovered.peek(x).to_le_bytes());
            }
            drop(recovered);
            SimReport {
                commits_replayed: rec.commits_replayed,
                fingerprint: fp,
                ..report
            }
        }
        _ => report,
    };

    if let Some(d) = &wal_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    Ok(report)
}
