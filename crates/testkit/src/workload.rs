//! Declarative workload specs and the simulation runner.
//!
//! A [`WorkloadSpec`] describes a whole concurrent scenario — session
//! count, entity universe, access-pattern [`Profile`], client-abort
//! cadence, virtual think time, durability, an optional [`FaultPlan`] —
//! as plain data. [`run_spec`] executes it under a [`VirtualRuntime`]
//! seeded from the caller: every session, the engine's GC task and the
//! WAL writer become simulation tasks, the interleaving is chosen by
//! the seed, and the run finishes with the full oracle battery from
//! the stress suite (lockstep full-scheduler replay, ground-truth CSR,
//! balance conservation, the live-graph bound, the boundary-summary
//! audit). The returned [`SimReport`] is a pure function of
//! `(spec, seed)` — the determinism self-test runs every spec twice
//! and demands equality, fingerprint included.
//!
//! # In-sim crash recovery
//!
//! Crash plans run crash *and* recovery inside one simulated timeline:
//! the post-crash [`Engine::open`] replay — including the recovered
//! engine's GC task and WAL writer — executes on the same
//! [`VirtualRuntime`], so a `(spec, seed)` coordinate covers the whole
//! crash/recover/continue story with zero OS-runtime threads, and the
//! schedule-space search can explore recovery interleavings too.
//! [`FaultPlan::Crash`] crashes once and checks the recovered image;
//! [`FaultPlan::CrashLoop`] crashes and *keeps running* on the
//! recovered engine, `waves` engine lifetimes in total.
//!
//! # Search integration
//!
//! [`run_spec_traced`] is the search driver's entry point: it runs a
//! spec under an explicit [`SimConfig`] (scheduling policy, trace
//! recording) and returns failures as data — the [`TracedRun`] carries
//! the decision trace, the engine-event coverage signatures, and the
//! failure headline instead of panicking. Specs themselves serialize
//! to a line-based text form ([`WorkloadSpec::to_text`]) so a
//! minimized repro file can carry its (shrunk) workload along with the
//! schedule trace.

use crate::sim::{ScheduleTrace, SimConfig, VirtualRuntime};
use deltx_core::CgState;
use deltx_engine::{
    CrashPoint, DurabilityConfig, Engine, EngineConfig, EngineError, Event, ExecutionMode,
    FaultSpec, FaultyStorage, FsStorage, GcPolicy, MetricsSnapshot, RecoverPolicy, Runtime,
    Session, TaskHandle, WalHealth, WalStorage,
};
use deltx_model::{Schedule, TxnId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How each session picks the entities a transaction touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// The stress suite's banking mix: transfer between two accounts,
    /// `cross_pct`% of pairs spanning shards (uniform), the rest
    /// confined to one shard (same residue class).
    Transfer {
        /// Percentage of transactions whose two accounts live in
        /// different shards.
        cross_pct: u32,
    },
    /// The `gc_escalation` bench's skew: `cross_pct`% of traffic hits
    /// one hot cross-shard pair (entity 0 in shard 0 ↔ entity 1 in
    /// shard 1); the rest is uniform single-shard traffic over the
    /// remaining shards.
    HotKeySkew {
        /// Percentage of transactions on the hot pair.
        cross_pct: u32,
    },
    /// Long analytics readers (each scans `scan` entities with think
    /// time between transactions, then rolls back) pinning versions
    /// while the other sessions run the transfer mix — the paper's
    /// Example 1 shape, where careless deletion grows the graph.
    LongReaders {
        /// Sessions (out of `WorkloadSpec::sessions`) that scan.
        readers: usize,
        /// Entities each scan reads before rolling back.
        scan: u32,
    },
    /// §5-style batch jobs: each transaction reads a contiguous block
    /// of entities (its declared access set) and rewrites the whole
    /// block atomically — values rotate within the block, so the
    /// global sum is conserved.
    Batch {
        /// Entities per block.
        block: u32,
    },
    /// Read-mostly fanout: every transaction reads `fan` entities;
    /// one in ten also bumps a counter entity. Balance conservation
    /// does not apply (writes are increments, not transfers).
    ReadMostly {
        /// Entities read per transaction.
        fan: u32,
    },
    /// Adversarial cross-shard chains: each transaction reads one
    /// entity in each of `len` *consecutive* shards and moves value
    /// from the first to the last, rewriting the middle entities
    /// unchanged — so every commit is a multi-shard escalation whose
    /// closure overlaps its neighbors', the worst case for the
    /// partial-lock planner.
    CrossShardChain {
        /// Shards each chain spans.
        len: usize,
    },
}

/// A deterministic storage-level fault, injected through the WAL's
/// [`FaultyStorage`] VFS wrapper. Unlike [`FaultPlan::Crash`] (which
/// kills the whole process image), a disk fault leaves the engine
/// *running* against a misbehaving device — the regime where the
/// error-policy tiers (bounded retry, fsync fail-stop, ENOSPC
/// degradation, the recovery scrub) are the thing under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Appends `[at, at + burst)` fail with a transient error; the
    /// writer's bounded retry must absorb the burst invisibly
    /// (`burst` must stay below the retry budget — see `precheck`).
    TransientAppend {
        /// First failing append (0-based, counted across segments).
        at: u64,
        /// Consecutive failing appends.
        burst: u32,
    },
    /// The `at`-th fsync fails *and the device drops the un-synced
    /// suffix* (the fsyncgate model). The log must poison itself
    /// fail-stop: reads keep working, writes refuse loudly, and no
    /// lost byte is ever acknowledged.
    FsyncFail {
        /// Failing fsync (0-based).
        at: u64,
    },
    /// The device holds only `bytes`; appends past it fail with
    /// ENOSPC. GC pressure may rescue the run by retiring segments —
    /// otherwise the engine must degrade to loud read-only, never
    /// wedge.
    Capacity {
        /// Device capacity in bytes.
        bytes: u64,
    },
    /// After a clean run, flip one sector of the lowest sealed
    /// segment and recover: [`RecoverPolicy::Strict`] must refuse to
    /// open, naming the damage; [`RecoverPolicy::Quarantine`] must
    /// isolate exactly that segment and report the lost LSN range.
    CorruptSealed {
        /// Sector index to flip (clamped to the segment's last).
        sector: u32,
    },
}

/// A fault to inject mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Run to completion unharmed.
    None,
    /// Arm `point` on the WAL once `after_commits` commits have been
    /// acknowledged, then let the surviving sessions drain against
    /// the crashed log; the runner recovers *in-sim* afterwards and
    /// checks the recovered image. Requires `durable`.
    Crash {
        /// Acknowledged commits before the crash fires.
        after_commits: u64,
        /// Which crash point to arm.
        point: CrashPoint,
    },
    /// Crash and *keep going*: `waves` engine lifetimes inside one
    /// simulated timeline. Every wave but the last arms `point` after
    /// its own `after_commits` acknowledgements; every recovery
    /// replays the WAL on the sim runtime, checks the recovered
    /// balance sum, and runs a fresh round of sessions on the
    /// recovered engine. The full oracle battery runs per wave.
    /// Requires `durable` and `waves >= 2`.
    CrashLoop {
        /// Acknowledged commits (per wave) before the crash fires.
        after_commits: u64,
        /// Which crash point to arm.
        point: CrashPoint,
        /// Total engine lifetimes (the last one runs to completion).
        waves: usize,
    },
    /// Run against a [`FaultyStorage`]-wrapped device injecting
    /// `fault` deterministically, then recover from the surviving
    /// bytes on a clean device and check what the scrub makes of
    /// them. Requires `durable`.
    Disk {
        /// The storage-level fault schedule.
        fault: DiskFault,
    },
    /// Reserved: a network partition between session groups. The
    /// runner rejects it with [`SimError::Unsupported`] until a
    /// distributed layer exists to partition.
    Partition {
        /// Acknowledged commits before the partition starts.
        at_commits: u64,
        /// Virtual nanoseconds until it heals.
        heal_after_ns: u64,
    },
}

/// Which oracles to run after the workload drains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checks {
    /// Replay the recorded history through a full (never-deleting)
    /// `CgState` and demand outcome-for-outcome equality (Theorem 2),
    /// then `check_invariants`.
    pub oracle_replay: bool,
    /// Ground-truth conflict-serializability of the accepted
    /// subschedule (`deltx_model::history::is_csr`).
    pub csr: bool,
    /// The sum of all balances is conserved (transfers only move
    /// value). Turn off for profiles whose writes are not transfers.
    pub balance_sum: bool,
    /// Peak and final live graph stay within
    /// `sessions + 4·entities + 16`.
    pub live_graph_bound: bool,
    /// Audit the incremental bitmask boundary summaries against the
    /// naive DFS oracle at end of run ([`Engine::summary_audit`]).
    /// The summaries only gate optimizations, so corruption is
    /// otherwise silent (over-/under-locking) — this check is what
    /// makes it a hard failure the schedule search can find.
    pub summary_exact: bool,
}

impl Checks {
    /// Everything on — the default for conserving profiles.
    pub fn all() -> Self {
        Checks {
            oracle_replay: true,
            csr: true,
            balance_sum: true,
            live_graph_bound: true,
            summary_exact: true,
        }
    }
}

/// A complete declarative scenario. See the zoo ([`crate::zoo`]) for
/// the stock instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Scenario name (reports, summaries, failure messages).
    pub name: String,
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Transactions each session attempts.
    pub txns_per_session: usize,
    /// Entity universe size.
    pub entities: u32,
    /// Engine shards.
    pub shards: usize,
    /// Access pattern.
    pub profile: Profile,
    /// Client rollback cadence: every `abort_every`-th transaction is
    /// rolled back after its reads (0 = never).
    pub abort_every: usize,
    /// Virtual think time between a session's transactions, in
    /// nanoseconds. Must be nonzero for background GC to run: the
    /// virtual clock only advances when every task is idle.
    pub think_ns: u64,
    /// Background GC tick, in virtual microseconds.
    pub gc_interval_us: u64,
    /// Run with the write-ahead log (group commit under the sim).
    pub durable: bool,
    /// How the engine drives its shards: the mutex baseline or
    /// single-writer shard loops (`ExecutionMode::ShardLoops`).
    pub execution: ExecutionMode,
    /// Fault to inject.
    pub fault: FaultPlan,
    /// Oracles to run.
    pub checks: Checks,
}

fn crash_point_text(p: CrashPoint) -> String {
    match p {
        CrashPoint::BeforeAppend => "before_append".into(),
        CrashPoint::AfterAppendBeforeFlush => "after_append".into(),
        CrashPoint::MidFlushTorn => "mid_flush_torn".into(),
        CrashPoint::TornWriteAt(off) => format!("torn_write_at:{off}"),
        CrashPoint::AfterFlushBeforeVisibility => "after_flush".into(),
    }
}

fn crash_point_parse(s: &str) -> Result<CrashPoint, String> {
    match s {
        "before_append" => Ok(CrashPoint::BeforeAppend),
        "after_append" => Ok(CrashPoint::AfterAppendBeforeFlush),
        "mid_flush_torn" => Ok(CrashPoint::MidFlushTorn),
        "after_flush" => Ok(CrashPoint::AfterFlushBeforeVisibility),
        other => match other.strip_prefix("torn_write_at:") {
            Some(off) => off
                .parse()
                .map(CrashPoint::TornWriteAt)
                .map_err(|_| format!("bad torn_write_at offset `{off}`")),
            None => Err(format!("unknown crash point `{other}`")),
        },
    }
}

fn disk_fault_text(f: DiskFault) -> String {
    match f {
        DiskFault::TransientAppend { at, burst } => format!("transient_append:{at}:{burst}"),
        DiskFault::FsyncFail { at } => format!("fsync_fail:{at}"),
        DiskFault::Capacity { bytes } => format!("capacity:{bytes}"),
        DiskFault::CorruptSealed { sector } => format!("corrupt_sealed:{sector}"),
    }
}

fn disk_fault_parse(s: &str) -> Result<DiskFault, String> {
    let (kind, rest) = s
        .split_once(':')
        .ok_or_else(|| format!("bad disk fault `{s}`"))?;
    fn num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
        v.parse()
            .map_err(|_| format!("bad disk fault {what} `{v}`"))
    }
    match kind {
        "transient_append" => {
            let (a, b) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad disk fault `{s}` (want transient_append:AT:BURST)"))?;
            Ok(DiskFault::TransientAppend {
                at: num(a, "at")?,
                burst: num(b, "burst")?,
            })
        }
        "fsync_fail" => Ok(DiskFault::FsyncFail {
            at: num(rest, "at")?,
        }),
        "capacity" => Ok(DiskFault::Capacity {
            bytes: num(rest, "bytes")?,
        }),
        "corrupt_sealed" => Ok(DiskFault::CorruptSealed {
            sector: num(rest, "sector")?,
        }),
        other => Err(format!("unknown disk fault `{other}`")),
    }
}

fn flag(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

impl WorkloadSpec {
    /// Line-based text form (`key value` per line) — embedded in
    /// minimized repro files so a repro carries its shrunk workload.
    /// [`WorkloadSpec::from_text`] inverts it exactly.
    pub fn to_text(&self) -> String {
        let profile = match self.profile {
            Profile::Transfer { cross_pct } => format!("transfer {cross_pct}"),
            Profile::HotKeySkew { cross_pct } => format!("hot_key_skew {cross_pct}"),
            Profile::LongReaders { readers, scan } => format!("long_readers {readers} {scan}"),
            Profile::Batch { block } => format!("batch {block}"),
            Profile::ReadMostly { fan } => format!("read_mostly {fan}"),
            Profile::CrossShardChain { len } => format!("cross_shard_chain {len}"),
        };
        let fault = match self.fault {
            FaultPlan::None => "none".into(),
            FaultPlan::Crash {
                after_commits,
                point,
            } => format!("crash {after_commits} {}", crash_point_text(point)),
            FaultPlan::CrashLoop {
                after_commits,
                point,
                waves,
            } => format!(
                "crash_loop {after_commits} {} {waves}",
                crash_point_text(point)
            ),
            FaultPlan::Disk { fault } => format!("disk {}", disk_fault_text(fault)),
            FaultPlan::Partition {
                at_commits,
                heal_after_ns,
            } => format!("partition {at_commits} {heal_after_ns}"),
        };
        let c = &self.checks;
        let execution = match self.execution {
            ExecutionMode::Mutex => "mutex",
            ExecutionMode::ShardLoops => "shard_loops",
        };
        format!(
            "name {}\nsessions {}\ntxns {}\nentities {}\nshards {}\nprofile {}\n\
             abort_every {}\nthink_ns {}\ngc_interval_us {}\ndurable {}\nexecution {}\nfault {}\n\
             checks replay={} csr={} balance={} bound={} summary={}\n",
            self.name,
            self.sessions,
            self.txns_per_session,
            self.entities,
            self.shards,
            profile,
            self.abort_every,
            self.think_ns,
            self.gc_interval_us,
            flag(self.durable),
            execution,
            fault,
            flag(c.oracle_replay),
            flag(c.csr),
            flag(c.balance_sum),
            flag(c.live_graph_bound),
            flag(c.summary_exact),
        )
    }

    /// Parses the [`WorkloadSpec::to_text`] form. Unknown keys are
    /// errors; missing keys keep conservative defaults (the `name`
    /// key is required).
    pub fn from_text(text: &str) -> Result<WorkloadSpec, String> {
        fn num<T: std::str::FromStr>(v: Option<&str>, what: &str) -> Result<T, String> {
            v.and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("spec: bad or missing {what}"))
        }
        let mut spec = WorkloadSpec {
            name: String::new(),
            sessions: 1,
            txns_per_session: 1,
            entities: 8,
            shards: 1,
            profile: Profile::Transfer { cross_pct: 0 },
            abort_every: 0,
            think_ns: 0,
            gc_interval_us: 50,
            durable: false,
            execution: ExecutionMode::Mutex,
            fault: FaultPlan::None,
            checks: Checks::all(),
        };
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |e: String| format!("spec line {}: {e}", i + 1);
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or("");
            match key {
                "name" => {
                    spec.name = parts.next().unwrap_or("").to_string();
                }
                "sessions" => spec.sessions = num(parts.next(), "sessions").map_err(at)?,
                "txns" => spec.txns_per_session = num(parts.next(), "txns").map_err(at)?,
                "entities" => spec.entities = num(parts.next(), "entities").map_err(at)?,
                "shards" => spec.shards = num(parts.next(), "shards").map_err(at)?,
                "abort_every" => spec.abort_every = num(parts.next(), "abort_every").map_err(at)?,
                "think_ns" => spec.think_ns = num(parts.next(), "think_ns").map_err(at)?,
                "gc_interval_us" => {
                    spec.gc_interval_us = num(parts.next(), "gc_interval_us").map_err(at)?
                }
                "durable" => spec.durable = parts.next() == Some("1"),
                "execution" => {
                    spec.execution = match parts.next() {
                        Some("mutex") | None => ExecutionMode::Mutex,
                        Some("shard_loops") => ExecutionMode::ShardLoops,
                        other => return Err(at(format!("unknown execution mode {other:?}"))),
                    };
                }
                "profile" => {
                    spec.profile = match parts.next() {
                        Some("transfer") => Profile::Transfer {
                            cross_pct: num(parts.next(), "cross_pct").map_err(at)?,
                        },
                        Some("hot_key_skew") => Profile::HotKeySkew {
                            cross_pct: num(parts.next(), "cross_pct").map_err(at)?,
                        },
                        Some("long_readers") => Profile::LongReaders {
                            readers: num(parts.next(), "readers").map_err(at)?,
                            scan: num(parts.next(), "scan").map_err(at)?,
                        },
                        Some("batch") => Profile::Batch {
                            block: num(parts.next(), "block").map_err(at)?,
                        },
                        Some("read_mostly") => Profile::ReadMostly {
                            fan: num(parts.next(), "fan").map_err(at)?,
                        },
                        Some("cross_shard_chain") => Profile::CrossShardChain {
                            len: num(parts.next(), "len").map_err(at)?,
                        },
                        other => return Err(at(format!("unknown profile {other:?}"))),
                    };
                }
                "fault" => {
                    spec.fault = match parts.next() {
                        Some("none") | None => FaultPlan::None,
                        Some("crash") => FaultPlan::Crash {
                            after_commits: num(parts.next(), "after_commits").map_err(at)?,
                            point: crash_point_parse(parts.next().unwrap_or("")).map_err(at)?,
                        },
                        Some("crash_loop") => FaultPlan::CrashLoop {
                            after_commits: num(parts.next(), "after_commits").map_err(at)?,
                            point: crash_point_parse(parts.next().unwrap_or("")).map_err(at)?,
                            waves: num(parts.next(), "waves").map_err(at)?,
                        },
                        Some("disk") => FaultPlan::Disk {
                            fault: disk_fault_parse(parts.next().unwrap_or("")).map_err(at)?,
                        },
                        Some("partition") => FaultPlan::Partition {
                            at_commits: num(parts.next(), "at_commits").map_err(at)?,
                            heal_after_ns: num(parts.next(), "heal_after_ns").map_err(at)?,
                        },
                        other => return Err(at(format!("unknown fault {other:?}"))),
                    };
                }
                "checks" => {
                    let mut c = Checks::all();
                    for kv in parts {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| at(format!("bad checks item `{kv}`")))?;
                        let on = v == "1";
                        match k {
                            "replay" => c.oracle_replay = on,
                            "csr" => c.csr = on,
                            "balance" => c.balance_sum = on,
                            "bound" => c.live_graph_bound = on,
                            "summary" => c.summary_exact = on,
                            other => return Err(at(format!("unknown check `{other}`"))),
                        }
                    }
                    spec.checks = c;
                }
                other => return Err(at(format!("unknown spec key `{other}`"))),
            }
        }
        if spec.name.is_empty() {
            return Err("spec: missing `name`".into());
        }
        Ok(spec)
    }
}

/// What a simulated run produced. Everything here is virtual-time or
/// count data, so two runs of the same `(spec, seed)` must compare
/// equal — the determinism self-test asserts exactly that. Counters
/// are summed across crash waves; `peak_nodes` is the maximum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Scenario name.
    pub name: String,
    /// The seed the interleaving was drawn from.
    pub seed: u64,
    /// Commits acknowledged to clients.
    pub commits: u64,
    /// Scheduler + durability failures observed by clients.
    pub failures: u64,
    /// Client rollbacks (including reader scans).
    pub client_aborts: u64,
    /// GC deletions over the run.
    pub gc_deletions: u64,
    /// Peak live-graph nodes sampled by the monitor task.
    pub peak_nodes: usize,
    /// The `O(active)` bound the peak was checked against (0 when the
    /// check is off).
    pub graph_bound: usize,
    /// Virtual nanoseconds the run spanned.
    pub virtual_ns: u64,
    /// Scheduling decisions the simulator took.
    pub switches: u64,
    /// FNV-1a digest of the recorded history, final entity values,
    /// and counters — the bit-identical-replay witness.
    pub fingerprint: u64,
    /// Commits replayed by in-sim recovery (crash plans only).
    pub commits_replayed: u64,
}

/// One schedule's full result, for search drivers: failure as data
/// plus the coverage signature and (optionally) the decision trace.
#[derive(Debug)]
pub struct TracedRun {
    /// The report of a green run (`None` when the run failed).
    pub report: Option<SimReport>,
    /// The failure headline of a red run (`None` when green).
    pub failure: Option<String>,
    /// The recorded decision trace (when the config asked for one).
    pub trace: Option<ScheduleTrace>,
    /// Distinct engine events seen — the schedule's coverage key.
    pub signatures: BTreeSet<(&'static str, u64)>,
    /// Scheduling decisions taken.
    pub switches: u64,
    /// Trace-replay divergences (recorded pick not runnable).
    pub divergences: u64,
}

impl TracedRun {
    /// Whether the run failed (oracle panic, deadlock, task panic).
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// Why a spec could not run.
#[derive(Debug)]
pub enum SimError {
    /// The spec asks for machinery the runner does not have yet.
    Unsupported(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unsupported(m) => write!(f, "unsupported workload: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x100_0000_01B3);
    }
}

/// Spawns a task that gets a handle back to the runtime (for think
/// time) — a thin sugar over [`Runtime::spawn`]'s `'static` closure.
fn spawn_on(
    rt: &Arc<VirtualRuntime>,
    name: &str,
    f: impl FnOnce(&Arc<VirtualRuntime>) + Send + 'static,
) -> TaskHandle {
    let inner = Arc::clone(rt);
    rt.spawn(name, Box::new(move || f(&inner)))
}

/// What one transaction attempt came to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TxnOutcome {
    /// Commit acknowledged.
    Committed,
    /// The client rolled it back on purpose (cadence or pure read).
    RolledBack,
    /// A scheduler or durability abort.
    Failed,
}

/// One transaction of the given profile.
fn run_txn(
    e: &Engine,
    spec: &WorkloadSpec,
    rng: &mut StdRng,
    tid: usize,
    i: usize,
    is_reader: bool,
) -> TxnOutcome {
    let n = spec.entities;
    let shards = spec.shards as u32;
    let span = (n / shards).max(1);
    let mut t = e.begin();
    let rollback = spec.abort_every != 0 && i.is_multiple_of(spec.abort_every);

    if is_reader {
        // Long analytics reader: scan a window, then roll back.
        let scan = match spec.profile {
            Profile::LongReaders { scan, .. } => scan,
            _ => 4,
        };
        let base = rng.gen_range(0..n);
        for k in 0..scan {
            if t.read((base + k) % n).is_err() {
                return TxnOutcome::Failed;
            }
        }
        t.abort();
        return TxnOutcome::RolledBack;
    }

    match spec.profile {
        Profile::Transfer { .. } | Profile::LongReaders { .. } => {
            let cross_pct = match spec.profile {
                Profile::Transfer { cross_pct } => cross_pct,
                _ => 30,
            };
            let (x, y) = if rng.gen_range(0u32..100) < cross_pct {
                (rng.gen_range(0..n), rng.gen_range(0..n))
            } else {
                let s = rng.gen_range(0..shards);
                (
                    (s + shards * rng.gen_range(0..span)) % n,
                    (s + shards * rng.gen_range(0..span)) % n,
                )
            };
            transfer(t, rng, rollback, x, y)
        }
        Profile::HotKeySkew { cross_pct } => {
            let (x, y) = if rng.gen_range(0u32..100) < cross_pct {
                (0, 1 % n) // the hot shard-0 ↔ shard-1 pair
            } else {
                let s = if shards > 2 {
                    2 + rng.gen_range(0..shards - 2)
                } else {
                    rng.gen_range(0..shards)
                };
                (
                    (s + shards * rng.gen_range(0..span)) % n,
                    (s + shards * rng.gen_range(0..span)) % n,
                )
            };
            transfer(t, rng, rollback, x, y)
        }
        Profile::Batch { block } => {
            let block = block.clamp(1, n);
            let blocks = (n / block).max(1);
            let base = (((tid + i) as u32) % blocks) * block;
            let mut vals = Vec::with_capacity(block as usize);
            for k in 0..block {
                let x = (base + k) % n;
                match t.read(x) {
                    Ok(v) => vals.push((x, v)),
                    Err(_) => return TxnOutcome::Failed,
                }
            }
            if rollback {
                t.abort();
                return TxnOutcome::RolledBack;
            }
            // Rotate values within the block: conserves the sum.
            let first = vals[0].1;
            for w in 0..vals.len() {
                let next = if w + 1 < vals.len() {
                    vals[w + 1].1
                } else {
                    first
                };
                t.write(vals[w].0, next);
            }
            commit_outcome(t)
        }
        Profile::ReadMostly { fan } => {
            for _ in 0..fan {
                if t.read(rng.gen_range(0..n)).is_err() {
                    return TxnOutcome::Failed;
                }
            }
            if rollback || !i.is_multiple_of(10) {
                t.abort(); // pure read txn: nothing to install
                return TxnOutcome::RolledBack;
            }
            let x = rng.gen_range(0..n);
            let Ok(v) = t.read(x) else {
                return TxnOutcome::Failed;
            };
            t.write(x, v + 1); // counter bump: not a transfer
            commit_outcome(t)
        }
        Profile::CrossShardChain { len } => {
            let len = len.clamp(2, spec.shards) as u32;
            let s0 = rng.gen_range(0..shards);
            let mut chain: Vec<(u32, i64)> = Vec::with_capacity(len as usize);
            for k in 0..len {
                let x = ((s0 + k) % shards + shards * rng.gen_range(0..span)) % n;
                if chain.iter().any(|&(px, _)| px == x) {
                    continue; // tiny universes can fold the chain
                }
                match t.read(x) {
                    Ok(v) => chain.push((x, v)),
                    Err(_) => return TxnOutcome::Failed,
                }
            }
            if rollback || chain.len() < 2 {
                t.abort();
                return TxnOutcome::RolledBack;
            }
            let amount = rng.gen_range(1i64..10);
            let last = chain.len() - 1;
            // Move value down the whole chain; middle entities are
            // rewritten unchanged so every hop is a write conflict.
            for (k, &(x, v)) in chain.iter().enumerate() {
                let nv = if k == 0 {
                    v - amount
                } else if k == last {
                    v + amount
                } else {
                    v
                };
                t.write(x, nv);
            }
            commit_outcome(t)
        }
    }
}

fn transfer(mut t: Session, rng: &mut StdRng, rollback: bool, x: u32, y: u32) -> TxnOutcome {
    let Ok(a) = t.read(x) else {
        return TxnOutcome::Failed;
    };
    let b = if y != x {
        match t.read(y) {
            Ok(v) => v,
            Err(_) => return TxnOutcome::Failed,
        }
    } else {
        0
    };
    if rollback {
        t.abort();
        return TxnOutcome::RolledBack;
    }
    let amount = rng.gen_range(1i64..10);
    if y != x {
        t.write(x, a - amount);
        t.write(y, b + amount);
    } else {
        t.write(x, a);
    }
    if t.commit().is_ok() {
        TxnOutcome::Committed
    } else {
        TxnOutcome::Failed
    }
}

fn commit_outcome(t: Session) -> TxnOutcome {
    if t.commit().is_ok() {
        TxnOutcome::Committed
    } else {
        TxnOutcome::Failed
    }
}

fn durability(dir: &Path) -> DurabilityConfig {
    DurabilityConfig {
        // Small segments so GC-driven truncation triggers in-run.
        segment_bytes: 16 * 1024,
        fsync: false,
        ..DurabilityConfig::new(dir.to_path_buf())
    }
}

fn precheck(spec: &WorkloadSpec) -> Result<(), SimError> {
    if let FaultPlan::Partition { .. } = spec.fault {
        return Err(SimError::Unsupported(
            "FaultPlan::Partition needs a distributed layer to partition; \
             the variant exists so zoo specs can carry it, but no runner \
             does yet"
                .into(),
        ));
    }
    match spec.fault {
        FaultPlan::Crash { .. } | FaultPlan::CrashLoop { .. } if !spec.durable => {
            return Err(SimError::Unsupported(
                "crash fault plans require `durable: true` (the crash is armed on the WAL)".into(),
            ));
        }
        FaultPlan::CrashLoop { waves, .. } if waves < 2 => {
            return Err(SimError::Unsupported(
                "FaultPlan::CrashLoop needs `waves >= 2` (the last wave runs clean)".into(),
            ));
        }
        FaultPlan::Disk { .. } if !spec.durable => {
            return Err(SimError::Unsupported(
                "disk fault plans require `durable: true` (the fault is injected under the WAL)"
                    .into(),
            ));
        }
        FaultPlan::Disk {
            fault: DiskFault::TransientAppend { burst, .. },
        } if !(1..=3).contains(&burst) => {
            return Err(SimError::Unsupported(
                "DiskFault::TransientAppend needs `1 <= burst <= 3`: the writer retries 4 \
                 attempts, so a longer burst is a permanent failure, not a transient one"
                    .into(),
            ));
        }
        _ => {}
    }
    Ok(())
}

/// Distinguishes concurrent runs of the same `(spec, seed)` within one
/// process so their WAL directories never collide.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

fn wal_dir_for(spec: &WorkloadSpec, seed: u64) -> Option<PathBuf> {
    spec.durable.then(|| {
        std::env::temp_dir().join(format!(
            "deltx-sim-{}-{seed}-{}-{}",
            spec.name,
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    })
}

/// Counters one traffic wave produced.
struct WaveStats {
    commits: u64,
    failures: u64,
    client_aborts: u64,
    peak: usize,
    crashed: bool,
}

/// One engine lifetime's worth of traffic: spawns the live-graph
/// monitor and every session as sim tasks, joins them, and returns
/// the wave counters — the portion shared by the crash-plan and
/// disk-fault runners. `crash_plan` arms the WAL crash point after
/// the given number of acknowledged commits.
fn traffic_wave(
    spec: &WorkloadSpec,
    seed: u64,
    rt: &Arc<VirtualRuntime>,
    engine: &Arc<Engine>,
    wave: usize,
    crash_plan: Option<(u64, CrashPoint)>,
) -> WaveStats {
    let commits = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let client_aborts = Arc::new(AtomicU64::new(0));
    let crash_armed = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(0));

    // Monitor task: samples the live graph at a fixed virtual
    // cadence — deterministic because the schedule is.
    let mon = {
        let (e, stop, peak) = (Arc::clone(engine), Arc::clone(&stop), Arc::clone(&peak));
        spawn_on(rt, &format!("sim-monitor-{wave}"), move |rtm| loop {
            rtm.sleep(Duration::from_micros(200));
            peak.fetch_max(e.graph_size().nodes, Ordering::Relaxed);
            if stop.load(Ordering::Relaxed) {
                return;
            }
        })
    };

    let readers = match spec.profile {
        Profile::LongReaders { readers, .. } => readers.min(spec.sessions),
        _ => 0,
    };

    let mut handles = Vec::with_capacity(spec.sessions);
    for tid in 0..spec.sessions {
        let e = Arc::clone(engine);
        let spec2 = spec.clone();
        let (commits, failures, client_aborts, crash_armed) = (
            Arc::clone(&commits),
            Arc::clone(&failures),
            Arc::clone(&client_aborts),
            Arc::clone(&crash_armed),
        );
        let is_reader = tid < readers;
        handles.push(spawn_on(rt, &format!("session-{wave}-{tid}"), move |rts| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x5E55_0000 + tid as u64 + ((wave as u64) << 20)));
            for i in 0..spec2.txns_per_session {
                match run_txn(&e, &spec2, &mut rng, tid, i, is_reader) {
                    TxnOutcome::Committed => {
                        let c = commits.fetch_add(1, Ordering::SeqCst) + 1;
                        if let Some((after_commits, point)) = crash_plan {
                            if c >= after_commits && !crash_armed.swap(true, Ordering::SeqCst) {
                                e.inject_crash(point);
                            }
                        }
                    }
                    TxnOutcome::RolledBack => {
                        client_aborts.fetch_add(1, Ordering::SeqCst);
                    }
                    TxnOutcome::Failed => {
                        failures.fetch_add(1, Ordering::SeqCst);
                    }
                }
                if spec2.think_ns > 0 {
                    rts.sleep(Duration::from_nanos(spec2.think_ns));
                }
            }
        }));
    }
    for h in handles {
        h.join();
    }
    stop.store(true, Ordering::SeqCst);
    mon.join();

    WaveStats {
        commits: commits.load(Ordering::SeqCst),
        failures: failures.load(Ordering::SeqCst),
        client_aborts: client_aborts.load(Ordering::SeqCst),
        peak: peak.load(Ordering::Relaxed),
        crashed: crash_armed.load(Ordering::SeqCst),
    }
}

/// The post-wave oracle battery plus the fingerprint fold shared by
/// the wave runners: lockstep full-scheduler replay, ground-truth
/// CSR, balance conservation (skipped when the wave crashed — the
/// survivors drained mid-transfer against a dead log), and the
/// boundary-summary audit.
#[allow(clippy::too_many_arguments)]
fn wave_oracles(
    spec: &WorkloadSpec,
    seed: u64,
    wave: usize,
    engine: &Engine,
    m: &MetricsSnapshot,
    finals: &[i64],
    crashed: bool,
    fp: &mut u64,
) {
    let history = engine.recorded_history().expect("recording enabled");
    let mut full = CgState::new();
    if spec.checks.oracle_replay || spec.checks.csr {
        for ev in &history.events {
            match ev {
                Event::Step { step, outcome } => {
                    let got = full.apply(step).unwrap_or_else(|err| {
                        panic!(
                            "[{} seed {seed}] wave {wave}: replay rejected {step:?}: {err}",
                            spec.name
                        )
                    });
                    assert_eq!(
                        got, *outcome,
                        "[{} seed {seed}] wave {wave}: engine diverged from the full \
                         scheduler on {step:?}",
                        spec.name
                    );
                }
                Event::ClientAbort(t) => full.abort_txn(*t).expect("client abort of live txn"),
            }
        }
        full.check_invariants();
    }
    if spec.checks.csr {
        let mut aborted: HashSet<TxnId> = full.aborted_txns().clone();
        aborted.extend(history.client_aborted());
        let accepted =
            Schedule::from_steps(history.accepted_steps()).accepted_subschedule(&aborted);
        assert!(
            deltx_model::history::is_csr(&accepted),
            "[{} seed {seed}] wave {wave}: accepted subschedule must be CSR",
            spec.name
        );
    }
    if spec.checks.balance_sum && !crashed {
        let sum: i64 = finals.iter().sum();
        assert_eq!(
            sum, 0,
            "[{} seed {seed}] wave {wave}: transfers must conserve the total balance",
            spec.name
        );
    }
    if spec.checks.summary_exact {
        engine.summary_audit().unwrap_or_else(|e| {
            panic!("[{} seed {seed}] wave {wave}: {e}", spec.name);
        });
    }

    // ---- Fingerprint --------------------------------------------
    for ev in &history.events {
        match ev {
            Event::Step { step, outcome } => fnv1a(fp, format!("{step:?}|{outcome:?};").as_bytes()),
            Event::ClientAbort(t) => fnv1a(fp, format!("CA{t:?};").as_bytes()),
        }
    }
    for v in finals {
        fnv1a(fp, &v.to_le_bytes());
    }
    for c in [m.commits, m.aborts_scheduler, m.aborts_voluntary] {
        fnv1a(fp, &c.to_le_bytes());
    }
}

/// The whole scenario, executed inside the sim as the root task:
/// one engine lifetime per wave, in-sim recovery between waves.
fn run_body(
    spec: &WorkloadSpec,
    seed: u64,
    rt: &Arc<VirtualRuntime>,
    wal_dir: Option<&Path>,
) -> SimReport {
    if let FaultPlan::Disk { fault } = spec.fault {
        let dir = wal_dir.expect("precheck guarantees `durable` for disk faults");
        return run_disk_body(spec, seed, rt, dir, fault);
    }
    let n_waves = match spec.fault {
        FaultPlan::Crash { .. } => 2,
        FaultPlan::CrashLoop { waves, .. } => waves,
        _ => 1,
    };
    let mut commits_total = 0u64;
    let mut failures_total = 0u64;
    let mut client_aborts_total = 0u64;
    let mut gc_deletions_total = 0u64;
    let mut commits_replayed_total = 0u64;
    let mut peak_global = 0usize;
    let mut fp: u64 = 0xCBF2_9CE4_8422_2325;

    for wave in 0..n_waves {
        // A single-crash plan's second wave is recovery-check only:
        // open in-sim, verify the recovered image, fold it into the
        // fingerprint — no new traffic (the PR-6 contract, now with
        // the recovered engine's WAL writer as a sim task).
        let recovery_check_only = matches!(spec.fault, FaultPlan::Crash { .. }) && wave == 1;
        if recovery_check_only {
            let (recovered, rec) = Engine::open(EngineConfig {
                shards: spec.shards,
                background_gc: false,
                durability: wal_dir.map(durability),
                runtime: Arc::clone(rt) as Arc<dyn Runtime>,
                ..EngineConfig::default()
            })
            .unwrap_or_else(|e| panic!("[{} seed {seed}] recovery must succeed: {e:?}", spec.name));
            if spec.checks.balance_sum {
                let sum: i64 = (0..spec.entities).map(|x| recovered.peek(x)).sum();
                assert_eq!(
                    sum, 0,
                    "[{} seed {seed}] recovered image must conserve the balance sum",
                    spec.name
                );
            }
            for x in 0..spec.entities {
                fnv1a(&mut fp, &recovered.peek(x).to_le_bytes());
            }
            commits_replayed_total += rec.commits_replayed;
            drop(recovered); // joins the recovered WAL writer in-sim
            continue;
        }

        let crash_plan: Option<(u64, CrashPoint)> = match spec.fault {
            FaultPlan::Crash {
                after_commits,
                point,
            } if wave == 0 => Some((after_commits, point)),
            FaultPlan::CrashLoop {
                after_commits,
                point,
                ..
            } if wave + 1 < n_waves => Some((after_commits, point)),
            _ => None,
        };

        let (engine, rec) = Engine::open(EngineConfig {
            shards: spec.shards,
            gc: GcPolicy::Noncurrent,
            gc_interval: Duration::from_micros(spec.gc_interval_us.max(1)),
            background_gc: true,
            record_history: true,
            partial_escalation: true,
            partial_gc: true,
            execution: spec.execution,
            durability: wal_dir.map(durability),
            runtime: Arc::clone(rt) as Arc<dyn Runtime>,
        })
        .unwrap_or_else(|e| {
            panic!(
                "[{} seed {seed}] wave {wave}: open must succeed: {e:?}",
                spec.name
            )
        });
        let engine = Arc::new(engine);
        commits_replayed_total += rec.commits_replayed;
        if wave > 0 && spec.checks.balance_sum {
            let sum: i64 = (0..spec.entities).map(|x| engine.peek(x)).sum();
            assert_eq!(
                sum, 0,
                "[{} seed {seed}] wave {wave}: recovered image must conserve the balance sum",
                spec.name
            );
        }

        let w = traffic_wave(spec, seed, rt, &engine, wave, crash_plan);
        let crashed = w.crashed;
        if !crashed {
            engine.gc_sweep();
        }
        let m = engine.metrics();
        let finals: Vec<i64> = (0..spec.entities).map(|x| engine.peek(x)).collect();
        let peak_nodes = w.peak.max(m.live_txns as usize);
        peak_global = peak_global.max(peak_nodes);

        wave_oracles(spec, seed, wave, &engine, &m, &finals, crashed, &mut fp);

        commits_total += w.commits;
        failures_total += w.failures;
        client_aborts_total += w.client_aborts;
        gc_deletions_total += m.gc_deletions;
        drop(engine); // joins the GC task and the WAL writer in-sim
    }

    let graph_bound = if spec.checks.live_graph_bound {
        let bound = spec.sessions + 4 * spec.entities as usize + 16;
        assert!(
            peak_global <= bound,
            "[{} seed {seed}] peak live graph {peak_global} exceeded O(active) bound {bound}",
            spec.name
        );
        bound
    } else {
        0
    };

    SimReport {
        name: spec.name.clone(),
        seed,
        commits: commits_total,
        failures: failures_total,
        client_aborts: client_aborts_total,
        gc_deletions: gc_deletions_total,
        peak_nodes: peak_global,
        graph_bound,
        virtual_ns: rt.now().as_nanos() as u64,
        switches: rt.switches(),
        fingerprint: fp,
        commits_replayed: commits_replayed_total,
    }
}

/// The degraded-mode contract, probed live on a poisoned or full
/// engine: reads still work, and a write commit is refused with a
/// loud [`EngineError::Durability`] — no panic, no hang, no silent
/// acknowledgement.
fn probe_degraded(spec: &WorkloadSpec, seed: u64, engine: &Engine) {
    assert!(
        engine.degraded(),
        "[{} seed {seed}] an unhealthy WAL must flip the engine to degraded",
        spec.name
    );
    let mut s = engine.begin();
    let v = s.read(0).unwrap_or_else(|e| {
        panic!(
            "[{} seed {seed}] degraded engine must serve reads: {e:?}",
            spec.name
        )
    });
    s.write(0, v);
    match s.commit() {
        Err(EngineError::Durability(_)) => {}
        other => panic!(
            "[{} seed {seed}] degraded engine must refuse writes with \
             EngineError::Durability, got {other:?}",
            spec.name
        ),
    }
}

/// The disk-fault runner: wave 0 drives ordinary traffic over a
/// [`FaultyStorage`]-wrapped device injecting the planned fault and
/// asserts the matching error-policy contract — bounded retry absorbs
/// transient bursts; any fsync failure poisons the log fail-stop (and
/// the engine goes loudly read-only); ENOSPC ends either rescued by
/// GC pressure or refusing writes. Then the run recovers from the
/// surviving bytes on a clean device and checks what the scrub makes
/// of them — including the Strict-refuse / Quarantine-isolate pair
/// for corruption planted in a sealed mid-log segment.
fn run_disk_body(
    spec: &WorkloadSpec,
    seed: u64,
    rt: &Arc<VirtualRuntime>,
    wal_dir: &Path,
    fault: DiskFault,
) -> SimReport {
    let fault_spec = match fault {
        DiskFault::TransientAppend { at, burst } => FaultSpec {
            transient_append_at: Some((at, burst)),
            ..FaultSpec::default()
        },
        DiskFault::FsyncFail { at } => FaultSpec {
            fsync_fail_at: Some(at),
            ..FaultSpec::default()
        },
        DiskFault::Capacity { bytes } => FaultSpec {
            capacity: Some(bytes),
            ..FaultSpec::default()
        },
        // The corruption is planted *between* the waves, not during.
        DiskFault::CorruptSealed { .. } => FaultSpec::default(),
    };
    let storage = Arc::new(FaultyStorage::new(
        Arc::new(FsStorage::new(wal_dir.to_path_buf())),
        fault_spec,
    ));
    // Tiny segments so several roll and seal in-run: sealed segments
    // are what ENOSPC retirement frees and what corruption targets.
    let disk_durability = |storage: Option<Arc<dyn WalStorage>>, recover| DurabilityConfig {
        segment_bytes: 1024,
        fsync: matches!(fault, DiskFault::FsyncFail { .. }),
        storage,
        recover,
        ..DurabilityConfig::new(wal_dir.to_path_buf())
    };
    let mut fp: u64 = 0xCBF2_9CE4_8422_2325;

    // ---- Wave 0: traffic over the faulty device ---------------------
    let (engine, _) = Engine::open(EngineConfig {
        shards: spec.shards,
        gc: GcPolicy::Noncurrent,
        gc_interval: Duration::from_micros(spec.gc_interval_us.max(1)),
        background_gc: true,
        record_history: true,
        partial_escalation: true,
        partial_gc: true,
        execution: spec.execution,
        durability: Some(disk_durability(
            Some(Arc::clone(&storage) as Arc<dyn WalStorage>),
            RecoverPolicy::Strict,
        )),
        runtime: Arc::clone(rt) as Arc<dyn Runtime>,
    })
    .unwrap_or_else(|e| {
        panic!(
            "[{} seed {seed}] disk wave: open must succeed: {e:?}",
            spec.name
        )
    });
    let engine = Arc::new(engine);

    let w = traffic_wave(spec, seed, rt, &engine, 0, None);
    let health = engine.wal_health();
    match fault {
        DiskFault::TransientAppend { .. } => assert_eq!(
            health,
            WalHealth::Ok,
            "[{} seed {seed}] bounded retry must absorb a transient append burst",
            spec.name
        ),
        DiskFault::FsyncFail { .. } => {
            assert_eq!(
                health,
                WalHealth::Poisoned,
                "[{} seed {seed}] an fsync failure must poison the log fail-stop",
                spec.name
            );
            probe_degraded(spec, seed, &engine);
        }
        DiskFault::Capacity { .. } => match health {
            // GC pressure retired enough segments to rescue the run.
            WalHealth::Ok => {}
            // The device stayed full: loud read-only, never wedged.
            WalHealth::NoSpace => probe_degraded(spec, seed, &engine),
            other => panic!(
                "[{} seed {seed}] ENOSPC must end rescued (Ok) or refusing \
                 (NoSpace), got {other:?}",
                spec.name
            ),
        },
        DiskFault::CorruptSealed { .. } => assert_eq!(
            health,
            WalHealth::Ok,
            "[{} seed {seed}] the corruption wave itself runs clean",
            spec.name
        ),
    }

    if health == WalHealth::Ok && !matches!(fault, DiskFault::CorruptSealed { .. }) {
        // Skipped for CorruptSealed: retiring segments would unlink
        // the sealed victims the between-wave corruption targets.
        engine.gc_sweep();
    }
    let m = engine.metrics();
    let finals: Vec<i64> = (0..spec.entities).map(|x| engine.peek(x)).collect();
    let peak_nodes = w.peak.max(m.live_txns as usize);
    wave_oracles(spec, seed, 0, &engine, &m, &finals, false, &mut fp);
    let wstats = engine.wal_stats().expect("disk runs are durable");
    fnv1a(&mut fp, &wstats.append_retries.to_le_bytes());
    fnv1a(&mut fp, &[health as u8]);
    drop(engine); // joins the GC task and the WAL writer in-sim

    // ---- Wave 1: recovery from the surviving bytes ------------------
    let reopen_clean = |fp: &mut u64| -> u64 {
        let (recovered, rec) = Engine::open(EngineConfig {
            shards: spec.shards,
            background_gc: false,
            durability: Some(disk_durability(None, RecoverPolicy::Strict)),
            runtime: Arc::clone(rt) as Arc<dyn Runtime>,
            ..EngineConfig::default()
        })
        .unwrap_or_else(|e| {
            panic!(
                "[{} seed {seed}] recovery after {fault:?} must succeed: {e:?}",
                spec.name
            )
        });
        if spec.checks.balance_sum {
            let sum: i64 = (0..spec.entities).map(|x| recovered.peek(x)).sum();
            assert_eq!(
                sum, 0,
                "[{} seed {seed}] recovered image must conserve the balance sum \
                 after {fault:?}",
                spec.name
            );
        }
        for x in 0..spec.entities {
            fnv1a(fp, &recovered.peek(x).to_le_bytes());
        }
        rec.commits_replayed
        // `recovered` drops here, joining its WAL writer in-sim.
    };

    let commits_replayed = if let DiskFault::CorruptSealed { sector } = fault {
        // Mid-log damage needs valid records *after* the victim: pick
        // the lowest segment that has a non-empty successor.
        let segs = storage.list().unwrap_or_default();
        let victim = segs.iter().enumerate().find_map(|(i, &s)| {
            segs[i + 1..]
                .iter()
                .any(|&t| storage.size(t).is_ok_and(|b| b > 0))
                .then_some(s)
        });
        let landed = match victim {
            Some(v) => storage.corrupt_sector(v, sector).unwrap_or(false),
            None => false,
        };
        if landed {
            let victim = victim.expect("landed implies a victim");
            // Strict: recovery must refuse loudly, naming the way out.
            match Engine::open(EngineConfig {
                shards: spec.shards,
                background_gc: false,
                durability: Some(disk_durability(None, RecoverPolicy::Strict)),
                runtime: Arc::clone(rt) as Arc<dyn Runtime>,
                ..EngineConfig::default()
            }) {
                Err(e) => {
                    let msg = format!("{e:?}");
                    assert!(
                        msg.contains("Quarantine"),
                        "[{} seed {seed}] the strict refusal must name the \
                         RecoverPolicy::Quarantine escape hatch: {msg}",
                        spec.name
                    );
                    fnv1a(&mut fp, msg.as_bytes());
                }
                Ok(_) => panic!(
                    "[{} seed {seed}] mid-log corruption must refuse to open \
                     under RecoverPolicy::Strict",
                    spec.name
                ),
            }
            // Quarantine: opens, isolating exactly the victim and
            // reporting the lost LSN range. The balance sum is NOT
            // checked here — records are gone, and the accurate loud
            // report is the contract.
            let (recovered, rec) = Engine::open(EngineConfig {
                shards: spec.shards,
                background_gc: false,
                durability: Some(disk_durability(None, RecoverPolicy::Quarantine)),
                runtime: Arc::clone(rt) as Arc<dyn Runtime>,
                ..EngineConfig::default()
            })
            .unwrap_or_else(|e| {
                panic!(
                    "[{} seed {seed}] RecoverPolicy::Quarantine must open past \
                     mid-log corruption: {e:?}",
                    spec.name
                )
            });
            assert_eq!(
                rec.quarantined
                    .iter()
                    .map(|q| q.segment)
                    .collect::<Vec<_>>(),
                vec![victim],
                "[{} seed {seed}] quarantine must isolate exactly the corrupted segment",
                spec.name
            );
            for q in &rec.quarantined {
                fnv1a(&mut fp, &q.segment.to_le_bytes());
                fnv1a(&mut fp, &q.lost_after.to_le_bytes());
                fnv1a(&mut fp, &q.resume_at.to_le_bytes());
            }
            for x in 0..spec.entities {
                fnv1a(&mut fp, &recovered.peek(x).to_le_bytes());
            }
            rec.commits_replayed
        } else {
            // Degenerate layout (everything still in one segment):
            // the run still proves a clean reopen.
            reopen_clean(&mut fp)
        }
    } else {
        reopen_clean(&mut fp)
    };

    let graph_bound = if spec.checks.live_graph_bound {
        let bound = spec.sessions + 4 * spec.entities as usize + 16;
        assert!(
            peak_nodes <= bound,
            "[{} seed {seed}] peak live graph {peak_nodes} exceeded O(active) bound {bound}",
            spec.name
        );
        bound
    } else {
        0
    };

    SimReport {
        name: spec.name.clone(),
        seed,
        commits: w.commits,
        failures: w.failures,
        client_aborts: w.client_aborts,
        gc_deletions: m.gc_deletions,
        peak_nodes,
        graph_bound,
        virtual_ns: rt.now().as_nanos() as u64,
        switches: rt.switches(),
        fingerprint: fp,
        commits_replayed,
    }
}

/// Runs `spec` under a fresh [`VirtualRuntime`] seeded with `seed` and
/// returns the deterministic [`SimReport`]. Panics (with the spec name
/// and seed in the message) if any enabled oracle fails. Crash plans
/// run recovery inside the same simulated timeline.
pub fn run_spec(spec: &WorkloadSpec, seed: u64) -> Result<SimReport, SimError> {
    precheck(spec)?;
    let wal_dir = wal_dir_for(spec, seed);
    if let Some(d) = &wal_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    let (out, _info) = VirtualRuntime::run_cfg(&SimConfig::random(seed), |rt| {
        run_body(spec, seed, rt, wal_dir.as_deref())
    });
    if let Some(d) = &wal_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    match out {
        Ok(report) => Ok(report),
        Err(fail) => fail.raise(),
    }
}

/// Runs `spec` under an explicit [`SimConfig`] — scheduling policy and
/// trace recording — and returns failures as data. The search driver's
/// entry point: a red schedule comes back as a [`TracedRun`] with the
/// failure headline, the decision trace (replayable and minimizable),
/// and the engine-event coverage signatures.
pub fn run_spec_traced(spec: &WorkloadSpec, cfg: &SimConfig) -> Result<TracedRun, SimError> {
    precheck(spec)?;
    let wal_dir = wal_dir_for(spec, cfg.seed);
    if let Some(d) = &wal_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    // A traced run's failure is data, not an event worth a backtrace:
    // search and minimization run hundreds of red schedules on purpose.
    let (out, info) = crate::sim::silence_expected_panics(|| {
        VirtualRuntime::run_cfg(cfg, |rt| run_body(spec, cfg.seed, rt, wal_dir.as_deref()))
    });
    if let Some(d) = &wal_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    let (report, failure) = match out {
        Ok(r) => (Some(r), None),
        Err(f) => (None, Some(f.message)),
    };
    Ok(TracedRun {
        report,
        failure,
        trace: info.trace,
        signatures: info.signatures,
        switches: info.switches,
        divergences: info.divergences,
    })
}
