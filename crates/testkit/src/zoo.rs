//! The workload zoo: stock [`WorkloadSpec`]s covering the engine's
//! interesting regimes.
//!
//! Each entry is small enough to run under the one-step-at-a-time
//! simulator in well under a second, yet shaped to stress a distinct
//! mechanism: the stress suite's transfer mix, the `gc_escalation`
//! bench's hot-pair skew, Example 1's long readers, §5 batch jobs,
//! read-mostly fanout, adversarial cross-shard chains, and a durable
//! run that crashes mid-flight and must recover. CI sweeps the whole
//! zoo over a seed matrix (`sim_zoo` binary); the determinism
//! self-test replays each spec twice per seed.

use crate::workload::{Checks, DiskFault, FaultPlan, Profile, WorkloadSpec};
use deltx_engine::{CrashPoint, ExecutionMode};

/// The stress suite's banking mix (`stress_replay::run_mix` ported to
/// the simulator): uniform transfers, 30% cross-shard, client
/// rollbacks every 17th transaction.
pub fn transfer_mix() -> WorkloadSpec {
    WorkloadSpec {
        name: "transfer_mix".into(),
        sessions: 6,
        txns_per_session: 40,
        entities: 16,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 30 },
        abort_every: 17,
        think_ns: 2_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks::all(),
    }
}

/// The `gc_escalation` bench's skew: most traffic hammers one hot
/// cross-shard pair, forcing escalated commits to contend on the same
/// closure while GC sweeps race them.
pub fn hot_key_skew() -> WorkloadSpec {
    WorkloadSpec {
        name: "hot_key_skew".into(),
        sessions: 6,
        txns_per_session: 40,
        entities: 24,
        shards: 8,
        profile: Profile::HotKeySkew { cross_pct: 30 },
        abort_every: 0,
        think_ns: 2_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks::all(),
    }
}

/// Example 1's nemesis shape: two long analytics readers pin versions
/// while transfer traffic churns — deletion must wait for exactly the
/// right moment and the graph must stay bounded anyway.
pub fn long_readers() -> WorkloadSpec {
    WorkloadSpec {
        name: "long_readers".into(),
        sessions: 6,
        txns_per_session: 30,
        entities: 16,
        shards: 4,
        profile: Profile::LongReaders {
            readers: 2,
            scan: 8,
        },
        abort_every: 0,
        think_ns: 4_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks::all(),
    }
}

/// §5 batch jobs: predeclared contiguous blocks read and rewritten
/// atomically — wide write sets, heavy same-block conflicts.
pub fn batch_jobs() -> WorkloadSpec {
    WorkloadSpec {
        name: "batch_jobs".into(),
        sessions: 4,
        txns_per_session: 30,
        entities: 16,
        shards: 4,
        profile: Profile::Batch { block: 4 },
        abort_every: 11,
        think_ns: 3_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks::all(),
    }
}

/// Read-mostly fanout: wide reads, rare counter bumps. Balance
/// conservation does not apply; the other oracles all do.
pub fn read_mostly_fanout() -> WorkloadSpec {
    WorkloadSpec {
        name: "read_mostly_fanout".into(),
        sessions: 6,
        txns_per_session: 40,
        entities: 24,
        shards: 4,
        profile: Profile::ReadMostly { fan: 6 },
        abort_every: 0,
        think_ns: 2_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks {
            balance_sum: false,
            ..Checks::all()
        },
    }
}

/// Adversarial cross-shard chains: every commit escalates across a
/// window of consecutive shards, overlapping its neighbors' closures —
/// the partial-lock planner's worst case.
pub fn cross_shard_chain() -> WorkloadSpec {
    WorkloadSpec {
        name: "cross_shard_chain".into(),
        sessions: 6,
        txns_per_session: 25,
        entities: 32,
        shards: 8,
        profile: Profile::CrossShardChain { len: 4 },
        abort_every: 13,
        think_ns: 2_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks::all(),
    }
}

/// A durable transfer run that crashes its WAL mid-flight (a torn
/// write inside a record), drains, recovers, and checks the recovered
/// image conserves the balance sum.
pub fn durable_crash_mid_run() -> WorkloadSpec {
    WorkloadSpec {
        name: "durable_crash_mid_run".into(),
        sessions: 4,
        txns_per_session: 30,
        entities: 16,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 25 },
        abort_every: 0,
        think_ns: 3_000,
        gc_interval_us: 50,
        durable: true,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::Crash {
            after_commits: 40,
            point: CrashPoint::TornWriteAt(11),
        },
        checks: Checks {
            // Post-crash the live graph holds acknowledged-but-failed
            // residue; skip the bound, keep every safety oracle.
            live_graph_bound: false,
            ..Checks::all()
        },
    }
}

/// A boundary-summary flood: two shards, all-cross-shard transfers
/// over a wide entity universe, so every transaction is a boundary
/// transaction and each shard's boundary index runs far past one
/// 64-bit word. Multi-word reach masks are exactly where the PR-4
/// trailing-word `BitSet` family of bugs lives — with `summary_exact`
/// on, the audit turns any mask pollution into a hard failure the
/// schedule search can steer toward.
pub fn boundary_flood() -> WorkloadSpec {
    WorkloadSpec {
        name: "boundary_flood".into(),
        sessions: 6,
        txns_per_session: 60,
        entities: 192,
        shards: 2,
        profile: Profile::Transfer { cross_pct: 100 },
        abort_every: 0,
        think_ns: 1_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks::all(),
    }
}

/// Maximum-contention hot spot: eight sessions, eight entities, two
/// shards, zero think time — every session is perpetually mid-txn, so
/// conflict cycles, scheduler rejections, abort-driven mask
/// recomputes, and backpressure reclamation all pile onto the same
/// instants. The regime where GC deletions overlap *active*
/// transactions — exactly where a dropped `D(G, N)` bridge becomes an
/// acceptance divergence, which is why the schedule search hunts the
/// drop-bridge planted bug here.
pub fn hot_contention() -> WorkloadSpec {
    WorkloadSpec {
        name: "hot_contention".into(),
        sessions: 8,
        txns_per_session: 50,
        entities: 8,
        shards: 2,
        profile: Profile::Transfer { cross_pct: 50 },
        abort_every: 5,
        think_ns: 0,
        gc_interval_us: 20,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks {
            // Zero think time starves the background GC tick (virtual
            // time never advances mid-run), so the graph legitimately
            // exceeds the O(active) bound between reclaim points.
            live_graph_bound: false,
            ..Checks::all()
        },
    }
}

/// Crash twice, recover twice, finish clean — three engine lifetimes
/// inside one simulated timeline. Each recovery replays the WAL on the
/// sim runtime and the recovered engine immediately takes new traffic,
/// so the search explores recovery interleavings too.
pub fn durable_crash_recover_twice() -> WorkloadSpec {
    WorkloadSpec {
        name: "durable_crash_recover_twice".into(),
        sessions: 4,
        txns_per_session: 30,
        entities: 16,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 25 },
        abort_every: 0,
        think_ns: 3_000,
        gc_interval_us: 50,
        durable: true,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::CrashLoop {
            after_commits: 30,
            point: CrashPoint::MidFlushTorn,
            waves: 3,
        },
        checks: Checks {
            // Crash waves leave acknowledged-but-failed residue in the
            // live graph; skip the bound, keep every safety oracle.
            live_graph_bound: false,
            ..Checks::all()
        },
    }
}

/// A transient append burst under live traffic: the device fails two
/// consecutive appends mid-run and the writer's bounded backoff must
/// absorb them invisibly — health stays `Ok`, every oracle passes,
/// and the recovered image still conserves the balance sum.
pub fn disk_transient_appends() -> WorkloadSpec {
    WorkloadSpec {
        name: "disk_transient_appends".into(),
        sessions: 4,
        txns_per_session: 25,
        entities: 16,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 25 },
        abort_every: 0,
        think_ns: 3_000,
        gc_interval_us: 50,
        durable: true,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::Disk {
            fault: DiskFault::TransientAppend { at: 2, burst: 2 },
        },
        checks: Checks::all(),
    }
}

/// The fsyncgate scenario: one fsync fails (and the device drops the
/// un-synced suffix), the log must poison itself fail-stop, and the
/// engine must flip to loud read-only — reads served, writes refused
/// with `EngineError::Durability`, nothing lost silently.
pub fn disk_fsync_poison() -> WorkloadSpec {
    WorkloadSpec {
        name: "disk_fsync_poison".into(),
        sessions: 4,
        txns_per_session: 25,
        entities: 16,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 25 },
        abort_every: 0,
        think_ns: 3_000,
        gc_interval_us: 50,
        durable: true,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::Disk {
            fault: DiskFault::FsyncFail { at: 1 },
        },
        checks: Checks {
            // Post-poison the live graph holds acknowledged-but-failed
            // residue; skip the bound, keep every safety oracle.
            live_graph_bound: false,
            ..Checks::all()
        },
    }
}

/// A nearly-full device: appends hit ENOSPC and park under backoff
/// while GC pressure races to retire sealed segments. Ends either
/// rescued (health `Ok`) or loudly read-only — never wedged, and the
/// surviving log always replays to a conserving image.
pub fn disk_enospc_pressure() -> WorkloadSpec {
    WorkloadSpec {
        name: "disk_enospc_pressure".into(),
        sessions: 4,
        txns_per_session: 25,
        entities: 16,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 25 },
        abort_every: 0,
        think_ns: 3_000,
        gc_interval_us: 50,
        durable: true,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::Disk {
            fault: DiskFault::Capacity { bytes: 6 * 1024 },
        },
        checks: Checks {
            // A mid-run write freeze leaves residue like a crash does.
            live_graph_bound: false,
            ..Checks::all()
        },
    }
}

/// Bit rot in a sealed mid-log segment, found by the recovery scrub:
/// `RecoverPolicy::Strict` must refuse the open naming the lost LSN
/// range and the `Quarantine` escape hatch; `Quarantine` must isolate
/// exactly the damaged segment and open with the survivors. A slower
/// GC tick keeps several sealed segments alive for the corruption to
/// target.
pub fn disk_corrupt_sealed_scrub() -> WorkloadSpec {
    WorkloadSpec {
        name: "disk_corrupt_sealed_scrub".into(),
        sessions: 4,
        txns_per_session: 30,
        entities: 16,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 25 },
        abort_every: 0,
        think_ns: 3_000,
        gc_interval_us: 400,
        durable: true,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::Disk {
            fault: DiskFault::CorruptSealed { sector: 0 },
        },
        checks: Checks {
            // The deliberately slow GC tick lets the graph run ahead
            // of reclamation between sweeps; skip the bound.
            live_graph_bound: false,
            ..Checks::all()
        },
    }
}

/// The adversarial cross-shard chain rerun under
/// [`ExecutionMode::ShardLoops`]: every commit escalates, so the pin
/// choreography (ascending pin → validate → decide → release) carries
/// essentially all the traffic, with the full oracle battery watching.
pub fn loop_cross_chain() -> WorkloadSpec {
    WorkloadSpec {
        name: "loop_cross_chain".into(),
        execution: ExecutionMode::ShardLoops,
        ..cross_shard_chain()
    }
}

/// Hot-pair skew under shard loops **with the WAL on**: mailbox-routed
/// single-shard commits submit log records under loop ownership while
/// escalated ones submit under pins — recovery and balance conservation
/// must hold across both submission paths.
pub fn loop_skew_durable() -> WorkloadSpec {
    WorkloadSpec {
        name: "loop_skew_durable".into(),
        execution: ExecutionMode::ShardLoops,
        durable: true,
        ..hot_key_skew()
    }
}

/// Every stock scenario, in a stable order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        transfer_mix(),
        hot_key_skew(),
        long_readers(),
        batch_jobs(),
        read_mostly_fanout(),
        cross_shard_chain(),
        durable_crash_mid_run(),
        boundary_flood(),
        hot_contention(),
        durable_crash_recover_twice(),
        disk_transient_appends(),
        disk_fsync_poison(),
        disk_enospc_pressure(),
        disk_corrupt_sealed_scrub(),
        loop_cross_chain(),
        loop_skew_durable(),
    ]
}
