//! The testkit's own acceptance bar: a `(spec, seed)` pair is a
//! *coordinate*. Running it twice must produce bit-identical reports —
//! same history fingerprint, same commit counts, same scheduling
//! decisions — and different seeds must actually explore different
//! interleavings.

use deltx_engine::run_seed;
use deltx_testkit::workload::{FaultPlan, SimError};
use deltx_testkit::{run_spec, zoo};

/// The tentpole's self-test: same `DELTX_SEED` (or default) + same
/// spec ⇒ the two virtual runs agree on every field of the report,
/// fingerprint included.
#[test]
fn same_seed_replays_every_zoo_spec_bit_identically() {
    let seed = run_seed(42);
    for spec in zoo::all() {
        let a = run_spec(&spec, seed)
            .unwrap_or_else(|e| panic!("{} must run under seed {seed}: {e}", spec.name));
        let b = run_spec(&spec, seed).expect("second run of a supported spec");
        assert_eq!(
            a, b,
            "{} did not replay bit-identically under seed {seed}",
            spec.name
        );
    }
}

/// The zoo passes its oracle battery on a second seed pair (CI sweeps
/// a wider matrix through the `sim_zoo` binary).
#[test]
fn zoo_passes_oracles_on_more_seeds() {
    for spec in zoo::all() {
        for seed in [run_seed(5), 0xFEED] {
            run_spec(&spec, seed)
                .unwrap_or_else(|e| panic!("{} failed under seed {seed}: {e}", spec.name));
        }
    }
}

/// Seeds are not decorative: two different seeds drive the transfer
/// mix through different interleavings (deterministically — this can
/// never flake, only fail the same way every time).
#[test]
fn different_seeds_explore_different_interleavings() {
    let spec = zoo::transfer_mix();
    let a = run_spec(&spec, 1).expect("seed 1");
    let b = run_spec(&spec, 2).expect("seed 2");
    assert_ne!(
        a.fingerprint, b.fingerprint,
        "seeds 1 and 2 produced the same history — the scheduler is ignoring its seed"
    );
}

/// Partition plans are declared but not yet runnable: the runner must
/// refuse them loudly instead of silently skipping the fault.
#[test]
fn partition_fault_is_rejected_not_ignored() {
    let spec = deltx_testkit::WorkloadSpec {
        fault: FaultPlan::Partition {
            at_commits: 10,
            heal_after_ns: 1_000,
        },
        ..zoo::transfer_mix()
    };
    match run_spec(&spec, 1) {
        Err(SimError::Unsupported(msg)) => {
            assert!(msg.contains("Partition"), "message names the fault: {msg}")
        }
        other => panic!("partition spec must be rejected, got {other:?}"),
    }
}
