//! Planted-bug regressions: reintroduce two known-fixed bugs behind
//! the `planted` feature's runtime toggles and assert the schedule
//! search actually finds them — within a CI-sized budget — and that
//! the minimizer shrinks each failure to a small deterministic repro.
//!
//! * `bitset_trailing_word` — the PR-4 `BitSet` family: equality that
//!   ignores a long operand's trailing words plus a `copy_from` that
//!   skips tail zeroing. Surfaces as a `summary_exact` audit failure
//!   once boundary masks outgrow one 64-bit word (`boundary_flood`).
//! * `drop_gc_bridge` — GC deletion that forgets the paper's `D(G,N)`
//!   bridge arcs. Surfaces under perpetual contention
//!   (`hot_contention`), where abort-driven mask recomputes rebuild
//!   reachability from the bridgeless graph.
//!
//! The toggles are process-global, so every test serializes behind
//! one mutex and disarms through a drop guard even on panic.

#![cfg(feature = "planted")]

use deltx_testkit::minimize::{apply_planted, minimize, replay_repro, ReproFile};
use deltx_testkit::search::{search_spec, SearchConfig};
use deltx_testkit::{run_spec, zoo, WorkloadSpec};
use std::sync::Mutex;

/// The ISSUE's bound: a minimized repro carries at most this many
/// recorded scheduling decisions.
const MAX_MIN_DECISIONS: usize = 25;
/// Schedules the search may spend before the hunt counts as failed.
const SEARCH_BUDGET: usize = 60;
/// Schedules the minimizer may spend.
const MINIMIZE_BUDGET: usize = 200;

static TOGGLES: Mutex<()> = Mutex::new(());

/// Arms one planted bug for the closure and disarms it afterwards,
/// panic or not. Serializes against the other tests in this file.
fn with_planted<T>(bug: &str, f: impl FnOnce() -> T) -> T {
    let _lock = TOGGLES.lock().unwrap_or_else(|e| e.into_inner());
    struct Disarm(String);
    impl Drop for Disarm {
        fn drop(&mut self) {
            let _ = apply_planted(std::slice::from_ref(&self.0), false);
        }
    }
    apply_planted(std::slice::from_ref(&bug.to_string()), true).expect("arm planted toggle");
    let _guard = Disarm(bug.to_string());
    f()
}

/// The full hunt, end to end: search finds the bug, the minimizer
/// shrinks it under the decision bound, the repro file round-trips
/// through its text form, and two replays of the repro agree.
fn hunt(bug: &str, spec: WorkloadSpec) {
    with_planted(bug, || {
        let cfg = SearchConfig::quick(SEARCH_BUDGET, 1);
        let outcome = search_spec(&spec, &cfg).expect("search runs");
        let found = outcome.failure.unwrap_or_else(|| {
            panic!(
                "search must find `{bug}` on {} within {SEARCH_BUDGET} schedules",
                spec.name
            )
        });

        let min = minimize(&found.spec, found.seed, &found.trace, MINIMIZE_BUDGET)
            .expect("minimizer starts from a reproducing failure");
        assert!(
            min.trace.decisions.len() <= MAX_MIN_DECISIONS,
            "`{bug}` repro must shrink to <= {MAX_MIN_DECISIONS} decisions, got {}",
            min.trace.decisions.len()
        );

        let repro = ReproFile {
            spec: min.spec,
            seed: min.seed,
            planted: vec![bug.to_string()],
            trace: min.trace,
        };
        let parsed = ReproFile::from_text(&repro.to_text()).expect("repro text parses back");
        assert_eq!(
            repro, parsed,
            "repro file must round-trip through its text form"
        );

        let (headline, deterministic) = replay_repro(&repro).expect("repro replays");
        assert!(
            headline.is_some(),
            "minimized `{bug}` repro must still fail on replay"
        );
        assert!(
            deterministic,
            "both replays of the `{bug}` repro must agree"
        );
    })
}

#[test]
fn search_finds_planted_bitset_trailing_word_bug() {
    hunt("bitset_trailing_word", zoo::boundary_flood());
}

#[test]
fn search_finds_planted_drop_gc_bridge_bug() {
    hunt("drop_gc_bridge", zoo::hot_contention());
}

/// The disk-fault battery's own planted bug: a writer that *retries*
/// a failed fsync instead of poisoning the log. Under the fsyncgate
/// model the device dropped the un-synced suffix, so the retry
/// "succeeds" with the data gone and lost commits get acknowledged —
/// the health assertion in the `disk_fsync_poison` scenario must
/// catch it immediately (every schedule fails, not just a rare one).
#[test]
fn disk_battery_catches_planted_retry_after_fsync_fail() {
    with_planted("retry_after_fsync_fail", || {
        let cfg = SearchConfig::quick(8, 1);
        let outcome = search_spec(&zoo::disk_fsync_poison(), &cfg).expect("search runs");
        let found = outcome.failure.unwrap_or_else(|| {
            panic!("retry-after-fsync-fail acknowledges lost data; the battery must catch it")
        });
        assert!(
            found.message.contains("poison"),
            "the catch is the fail-stop contract, got: {}",
            found.message
        );
    })
}

/// The control: with both toggles disarmed, the two hunt scenarios run
/// green — the planted build itself must not perturb the engine.
#[test]
fn hunt_scenarios_run_green_with_toggles_disarmed() {
    let _lock = TOGGLES.lock().unwrap_or_else(|e| e.into_inner());
    for spec in [
        zoo::boundary_flood(),
        zoo::hot_contention(),
        zoo::disk_fsync_poison(),
    ] {
        run_spec(&spec, 3).unwrap_or_else(|e| {
            panic!("{} must run green without planted toggles: {e}", spec.name)
        });
    }
}

/// Unknown toggle names are an error, not a silent no-op — a repro
/// file naming a bug this build does not know must fail loudly.
#[test]
fn unknown_planted_toggle_is_rejected() {
    let err = apply_planted(&["no_such_bug".to_string()], true).unwrap_err();
    assert!(err.contains("no_such_bug"), "error names the toggle: {err}");
}
