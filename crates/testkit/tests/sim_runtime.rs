//! The virtual scheduler's own contract: exact virtual time, the
//! eventcount protocol, deterministic scheduling, deadlock detection.

use deltx_engine::Runtime;
use deltx_testkit::VirtualRuntime;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[test]
fn virtual_sleep_advances_the_clock_exactly() {
    VirtualRuntime::run(1, |rt| {
        let t0 = rt.now();
        rt.sleep(Duration::from_millis(5));
        assert_eq!(rt.now() - t0, Duration::from_millis(5));
        // Idle time is free: a long sleep costs no wall clock.
        rt.sleep(Duration::from_secs(3600));
        assert_eq!(
            rt.now() - t0,
            Duration::from_secs(3600) + Duration::from_millis(5)
        );
    });
}

#[test]
fn eventcount_handoff_between_tasks() {
    VirtualRuntime::run(2, |rt| {
        let ev = rt.event();
        let flag = Arc::new(AtomicBool::new(false));
        let (ev2, flag2) = (Arc::clone(&ev), Arc::clone(&flag));
        let h = rt.spawn(
            "setter",
            Box::new(move || {
                flag2.store(true, Ordering::SeqCst);
                ev2.notify();
            }),
        );
        loop {
            let key = ev.prepare();
            if flag.load(Ordering::SeqCst) {
                break;
            }
            ev.wait(key);
        }
        h.join();
    });
}

#[test]
fn wait_timeout_expires_on_virtual_deadline() {
    VirtualRuntime::run(3, |rt| {
        let ev = rt.event();
        let t0 = rt.now();
        let key = ev.prepare();
        let notified = ev.wait_timeout(key, Duration::from_micros(10));
        assert!(!notified, "nobody notified");
        assert_eq!(
            rt.now() - t0,
            Duration::from_micros(10),
            "woke exactly on deadline"
        );
    });
}

#[test]
fn same_seed_same_schedule_different_seed_different_schedule() {
    fn trace(seed: u64) -> (Vec<usize>, u64) {
        VirtualRuntime::run(seed, |rt| {
            let order = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (0..4)
                .map(|tid| {
                    let rt2 = Arc::clone(rt);
                    let order = Arc::clone(&order);
                    rt.spawn(
                        &format!("t{tid}"),
                        Box::new(move || {
                            for _ in 0..8 {
                                order.lock().unwrap().push(tid);
                                rt2.yield_now();
                            }
                        }),
                    )
                })
                .collect();
            for h in handles {
                h.join();
            }
            let v = order.lock().unwrap().clone();
            (v, rt.switches())
        })
    }
    assert_eq!(trace(7), trace(7), "same seed must replay the schedule");
    assert_ne!(
        trace(7).0,
        trace(8).0,
        "different seeds must pick different interleavings"
    );
}

#[test]
#[should_panic(expected = "deltx-sim")]
fn deadlock_is_detected_not_hung() {
    VirtualRuntime::run(9, |rt| {
        let ev = rt.event();
        let ev2 = Arc::clone(&ev);
        let h = rt.spawn(
            "stuck",
            Box::new(move || {
                // Waits on an event nobody will ever notify.
                let key = ev2.prepare();
                ev2.wait(key);
            }),
        );
        h.join();
    });
}

#[test]
#[should_panic(expected = "seed 11")]
fn task_panics_carry_the_seed() {
    VirtualRuntime::run(11, |rt| {
        let h = rt.spawn("boom", Box::new(|| panic!("workload bug")));
        h.join();
    });
}

/// The deadlock report is a diagnosis, not just a detection: it names
/// every parked task and the wait-for edge it is stuck on (which event,
/// created by whom), so a cycle reads straight off the message.
#[test]
fn deadlock_report_names_tasks_and_wait_for_edges() {
    use deltx_testkit::sim::{silence_expected_panics, SimConfig};

    let (out, _info) = silence_expected_panics(|| {
        VirtualRuntime::run_cfg(&SimConfig::random(21), |rt| {
            // Each task publishes its own event, then waits on the
            // other's: a two-cycle in the wait-for graph.
            let slot_a: Arc<Mutex<Option<Arc<dyn deltx_engine::RtEvent>>>> =
                Arc::new(Mutex::new(None));
            let slot_b: Arc<Mutex<Option<Arc<dyn deltx_engine::RtEvent>>>> =
                Arc::new(Mutex::new(None));
            let (rt_a, sa, sb) = (Arc::clone(rt), Arc::clone(&slot_a), Arc::clone(&slot_b));
            let ha = rt.spawn(
                "alice",
                Box::new(move || {
                    *sa.lock().unwrap() = Some(rt_a.event());
                    loop {
                        let other = sb.lock().unwrap().clone();
                        match other {
                            Some(ev) => {
                                let key = ev.prepare();
                                ev.wait(key);
                                break;
                            }
                            None => rt_a.yield_now(),
                        }
                    }
                }),
            );
            let (rt_b, sa, sb) = (Arc::clone(rt), Arc::clone(&slot_a), Arc::clone(&slot_b));
            let hb = rt.spawn(
                "bob",
                Box::new(move || {
                    *sb.lock().unwrap() = Some(rt_b.event());
                    loop {
                        let other = sa.lock().unwrap().clone();
                        match other {
                            Some(ev) => {
                                let key = ev.prepare();
                                ev.wait(key);
                                break;
                            }
                            None => rt_b.yield_now(),
                        }
                    }
                }),
            );
            ha.join();
            hb.join();
        })
    });

    let fail = out.expect_err("a wait-for cycle must be detected as deadlock");
    let report = format!("{}\n{}", fail.message, fail.task_panic().unwrap_or(""));
    assert!(
        report.contains("DEADLOCK"),
        "report must say DEADLOCK:\n{report}"
    );
    for task in ["alice", "bob", "root"] {
        assert!(
            report.contains(task),
            "report must name task `{task}`:\n{report}"
        );
    }
    assert!(
        report.contains("wait-for edges:"),
        "report must carry a wait-for section:\n{report}"
    );
    assert!(
        report.contains("created by"),
        "edges must name the event's creating task:\n{report}"
    );
    assert!(
        report.contains("`alice` waits on") && report.contains("`bob` waits on"),
        "both cycle members must appear as edge sources:\n{report}"
    );
    assert!(
        report.contains("DELTX_SEED=21"),
        "report must carry the replay seed:\n{report}"
    );
}
