//! Simulated twins of the wall-clock stress tests: the engine suite's
//! `stress_replay::run_mix` churn and `crash_recovery`'s
//! crash-under-concurrent-load, re-expressed as [`WorkloadSpec`]s so
//! they run under the virtual scheduler — same shape of traffic, but
//! deterministic, seed-replayable, and an order of magnitude faster.
//! The wall-clock originals stay in `deltx-engine` as the
//! real-threads smoke layer; these twins are where the interleaving
//! space actually gets explored.

use deltx_engine::{run_seed, CrashPoint, ExecutionMode};
use deltx_testkit::{run_spec, zoo, Checks, FaultPlan, Profile, WorkloadSpec};

/// The `run_mix` churn twin: 8 sessions of banking transfers with
/// client rollbacks every 17th transaction, enough volume that GC
/// deletes the bulk of the history while traffic is still flowing.
fn churn_twin() -> WorkloadSpec {
    WorkloadSpec {
        name: "churn_twin".into(),
        sessions: 8,
        txns_per_session: 150,
        entities: 32,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 60 },
        abort_every: 17,
        think_ns: 1_000,
        gc_interval_us: 50,
        durable: false,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::None,
        checks: Checks::all(),
    }
}

/// The crash-under-concurrent-load twin: durable transfers with the
/// plug pulled mid-flight (torn flush), recovery running *in-sim* on
/// the same virtual timeline.
fn crash_load_twin() -> WorkloadSpec {
    WorkloadSpec {
        name: "crash_load_twin".into(),
        sessions: 4,
        txns_per_session: 100,
        entities: 32,
        shards: 4,
        profile: Profile::Transfer { cross_pct: 30 },
        abort_every: 0,
        think_ns: 2_000,
        gc_interval_us: 50,
        durable: true,
        execution: ExecutionMode::Mutex,
        fault: FaultPlan::Crash {
            after_commits: 50,
            point: CrashPoint::MidFlushTorn,
        },
        checks: Checks {
            // Post-crash residue legitimately exceeds the O(active)
            // bound; every safety oracle stays on.
            live_graph_bound: false,
            ..Checks::all()
        },
    }
}

/// The churn twin sustains real load — most of the history both
/// commits and gets deleted — and replays bit-identically.
#[test]
fn churn_twin_sustains_load_and_replays() {
    let seed = run_seed(0x0C4A);
    let a = run_spec(&churn_twin(), seed).expect("churn twin runs green");
    assert!(
        a.commits > 300,
        "churn twin must commit real volume, got {}",
        a.commits
    );
    assert!(
        a.gc_deletions > 150,
        "GC must keep up with the churn, got {} deletions",
        a.gc_deletions
    );
    assert!(a.client_aborts > 0, "the rollback mix must exercise aborts");
    let b = run_spec(&churn_twin(), seed).expect("second run");
    assert_eq!(a, b, "churn twin must replay bit-identically");
}

/// The crash twin loses the tail but recovers a consistent prefix:
/// recovery replays a meaningful number of commits, the balance-sum
/// oracle holds on the recovered image, and the whole crash +
/// recovery timeline replays bit-identically.
#[test]
fn crash_under_load_twin_recovers_in_sim() {
    let seed = run_seed(0x0C4B);
    let a = run_spec(&crash_load_twin(), seed).expect("crash twin runs green");
    assert!(
        a.commits_replayed >= 40,
        "recovery must replay the pre-crash commits, got {}",
        a.commits_replayed
    );
    let b = run_spec(&crash_load_twin(), seed).expect("second run");
    assert_eq!(a, b, "crash + in-sim recovery must replay bit-identically");
}

/// The acceptance bar for repeated in-sim recovery: three engine
/// lifetimes (crash, recover, crash, recover, finish) inside one
/// simulated timeline, bit-identical under `DELTX_SEED`.
#[test]
fn crash_recover_twice_replays_bit_identically() {
    let spec = zoo::durable_crash_recover_twice();
    let seed = run_seed(0x0C4C);
    let a = run_spec(&spec, seed).expect("crash-loop spec runs green");
    assert!(
        a.commits_replayed > 0,
        "at least one recovery wave must replay commits"
    );
    let b = run_spec(&spec, seed).expect("second run");
    assert_eq!(
        a, b,
        "repeated crash + recovery must replay bit-identically"
    );
}
