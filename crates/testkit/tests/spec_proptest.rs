//! Property tests for the search toolchain's serialization layer and
//! its determinism contract: every generated [`WorkloadSpec`] and
//! [`ScheduleTrace`] must survive the text round-trip exactly (repro
//! files depend on it — a lossy corner means a repro that replays a
//! *different* scenario than the one that failed), and every runnable
//! spec must replay bit-identically, both seed-to-seed and through a
//! recorded trace.

use deltx_engine::{CrashPoint, ExecutionMode, ALL_CRASH_POINTS};
use deltx_testkit::workload::{Checks, FaultPlan, Profile, WorkloadSpec};
use deltx_testkit::{run_spec, run_spec_traced, Decision, PickPolicy, ScheduleTrace, SimConfig};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

fn profile_strategy() -> BoxedStrategy<Profile> {
    prop_oneof![
        (0u32..=100).prop_map(|cross_pct| Profile::Transfer { cross_pct }),
        (0u32..=100).prop_map(|cross_pct| Profile::HotKeySkew { cross_pct }),
        ((1usize..4), (1u32..8)).prop_map(|(readers, scan)| Profile::LongReaders { readers, scan }),
        (1u32..8).prop_map(|block| Profile::Batch { block }),
        (1u32..8).prop_map(|fan| Profile::ReadMostly { fan }),
        (2usize..5).prop_map(|len| Profile::CrossShardChain { len }),
    ]
    .boxed()
}

fn crash_point_strategy() -> BoxedStrategy<CrashPoint> {
    (0usize..ALL_CRASH_POINTS.len())
        .prop_map(|i| ALL_CRASH_POINTS[i])
        .boxed()
}

fn fault_strategy() -> BoxedStrategy<FaultPlan> {
    prop_oneof![
        Just(FaultPlan::None),
        ((1u64..200), crash_point_strategy()).prop_map(|(after_commits, point)| {
            FaultPlan::Crash {
                after_commits,
                point,
            }
        }),
        ((1u64..100), crash_point_strategy(), (2usize..5)).prop_map(
            |(after_commits, point, waves)| FaultPlan::CrashLoop {
                after_commits,
                point,
                waves,
            }
        ),
    ]
    .boxed()
}

fn checks_strategy() -> BoxedStrategy<Checks> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(oracle_replay, csr, balance_sum, live_graph_bound, summary_exact)| Checks {
                oracle_replay,
                csr,
                balance_sum,
                live_graph_bound,
                summary_exact,
            },
        )
        .boxed()
}

/// The full spec space, including faulty and unsupported corners —
/// the round-trip must be exact whether or not a runner exists.
fn spec_strategy() -> BoxedStrategy<WorkloadSpec> {
    const NAMES: [&str; 5] = ["prop", "shrunk_spec", "x", "crash_9", "a_b_c"];
    (
        (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string()),
        (1usize..16, 1usize..64, 1u32..128, 1usize..8),
        profile_strategy(),
        (0usize..32, 0u64..1_000_000, 1u64..10_000),
        (any::<bool>(), any::<bool>(), fault_strategy()),
        checks_strategy(),
    )
        .prop_map(
            |(name, (sessions, txns, entities, shards), profile, knobs, df, checks)| {
                let (abort_every, think_ns, gc_interval_us) = knobs;
                let (durable, loops, fault) = df;
                WorkloadSpec {
                    name,
                    sessions,
                    txns_per_session: txns,
                    entities,
                    shards,
                    profile,
                    abort_every,
                    think_ns,
                    gc_interval_us,
                    durable,
                    execution: if loops {
                        ExecutionMode::ShardLoops
                    } else {
                        ExecutionMode::Mutex
                    },
                    fault,
                    checks,
                }
            },
        )
        .boxed()
}

/// Decision lists as the scheduler would record them: a non-empty
/// ready set and a chosen task drawn from it.
fn trace_strategy() -> BoxedStrategy<ScheduleTrace> {
    let decision =
        (prop::collection::btree_set(0usize..64, 1..8), 0usize..64).prop_map(|(ready, pick)| {
            let ready: Vec<usize> = ready.into_iter().collect();
            let chosen = ready[pick % ready.len()];
            Decision { ready, chosen }
        });
    prop::collection::vec(decision, 0..64)
        .prop_map(|decisions| ScheduleTrace { decisions })
        .boxed()
}

/// Small specs every runner supports green: transfer traffic, no
/// faults, full oracle battery — cheap enough to simulate inside a
/// property.
fn runnable_spec_strategy() -> BoxedStrategy<WorkloadSpec> {
    (
        (1usize..4, 2usize..10),
        (4u32..16, 1usize..4),
        0u32..=100,
        (0usize..4, 500u64..4_000, 20u64..100),
        any::<bool>(),
    )
        .prop_map(
            |((sessions, txns), (entities, shards), cross_pct, knobs, loops)| {
                let (abort_every, think_ns, gc_interval_us) = knobs;
                WorkloadSpec {
                    name: "prop_small".into(),
                    sessions,
                    txns_per_session: txns,
                    entities,
                    shards,
                    profile: Profile::Transfer { cross_pct },
                    abort_every,
                    think_ns,
                    gc_interval_us,
                    durable: false,
                    execution: if loops {
                        ExecutionMode::ShardLoops
                    } else {
                        ExecutionMode::Mutex
                    },
                    fault: FaultPlan::None,
                    checks: Checks::all(),
                }
            },
        )
        .boxed()
}

proptest! {
    /// Repro files embed the shrunk spec as text: the round-trip must
    /// invert exactly over the whole spec space.
    #[test]
    fn spec_text_round_trips(spec in spec_strategy()) {
        let text = spec.to_text();
        let parsed = WorkloadSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("generated spec must parse back: {e}\n{text}"));
        prop_assert_eq!(spec, parsed);
    }

    /// The decision-list half of a repro file round-trips exactly,
    /// ready sets and all.
    #[test]
    fn trace_text_round_trips(trace in trace_strategy()) {
        let parsed = ScheduleTrace::from_text(&trace.to_text())
            .unwrap_or_else(|e| panic!("recorded trace must parse back: {e}"));
        prop_assert_eq!(trace, parsed);
    }
}

proptest! {
    // Each case simulates three full runs; keep the count CI-sized.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The determinism contract, generalized off the zoo's hand-picked
    /// specs: any supported spec replays bit-identically under one
    /// seed, and a recorded trace replays to the identical report.
    #[test]
    fn generated_specs_replay_bit_identically(spec in runnable_spec_strategy(), seed in 0u64..1_000) {
        let a = run_spec(&spec, seed).unwrap_or_else(|e| panic!("spec must run: {e}"));
        let b = run_spec(&spec, seed).unwrap_or_else(|e| panic!("spec must run: {e}"));
        prop_assert_eq!(&a, &b, "same (spec, seed) must replay bit-identically");

        // Record the schedule, then pin it back via trace replay.
        let recorded = run_spec_traced(
            &spec,
            &SimConfig {
                seed,
                policy: PickPolicy::Random,
                record_trace: true,
            },
        )
        .unwrap_or_else(|e| panic!("spec must run traced: {e}"));
        prop_assert!(
            !recorded.failed(),
            "green spec must record green: {:?}",
            recorded.failure
        );
        let trace = recorded.trace.clone().expect("record_trace asked for a trace");
        let replayed = run_spec_traced(
            &spec,
            &SimConfig {
                seed,
                policy: PickPolicy::Trace(trace),
                record_trace: false,
            },
        )
        .unwrap_or_else(|e| panic!("spec must replay traced: {e}"));
        prop_assert_eq!(replayed.divergences, 0, "a full recorded trace must replay verbatim");
        prop_assert_eq!(
            recorded.report.as_ref(),
            replayed.report.as_ref(),
            "trace replay must reproduce the recorded run's report exactly"
        );
    }
}
