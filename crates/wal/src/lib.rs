//! `deltx-wal` — durability for the deletion-centric engine.
//!
//! A segmented write-ahead log whose checkpointing *is* the paper's
//! deletion machinery. Three ideas, one per module boundary:
//!
//! - **Group commit** ([`Wal::submit_commit`] / [`Wal::wait_durable`]):
//!   commit records are enqueued under the committing session's shard
//!   locks (log order = serialization order for conflicting commits)
//!   and flushed in batches by one writer thread; a session's commit
//!   backpressure is exactly "wait for the fsync covering my LSN".
//! - **GC-driven checkpointing** ([`Wal::note_deleted`]): when the
//!   engine's noncurrent/C1/C2 sweep deletes a transaction `D(G,N)`
//!   and truncates its versions, the WAL decrements that commit's
//!   segment live count; sealed all-dead segments are removed. The
//!   log stays bounded by the live graph — recovery is `O(live)`,
//!   not `O(history)`, the durability analogue of Theorem 2.
//! - **Crash-point fault injection** ([`Wal::arm_crash`],
//!   [`CrashPoint`]): a planted crash executes inside the commit path,
//!   discards un-flushed batches, and tampers the on-disk tail to
//!   match the scenario, so recovery tests exercise exactly the disk
//!   images real kills produce.
//!
//! Why truncation is safe: the noncurrent deletion policy never
//! deletes the *current* writer of any entity (Corollary 1's test),
//! so every entity's current-value commit record survives in some
//! live segment. Replaying the surviving records in LSN order
//! therefore rebuilds the exact final value of every entity;
//! overwritten intermediate values are lost, which is precisely the
//! contract of `Store::truncate_versions`.

mod log;
mod record;
mod storage;

pub use crate::log::{
    CommitRecord, CrashPoint, DurabilityConfig, QuarantinedSegment, RecoverPolicy, RecoveryScan,
    Wal, WalError, WalHealth, WalStats, ALL_CRASH_POINTS, FLUSH_BUCKET_UPPER_NANOS,
};
pub use crate::record::{crc32, decode, encode_abort, encode_commit, DecodeError, WalRecord};
pub use crate::storage::{
    FaultSpec, FaultyStorage, FsStorage, StorageError, StorageResult, WalStorage, SECTOR_BYTES,
};

/// Deliberately-buggy variants of WAL internals, compiled only under
/// the `planted` feature. They exist to prove the disk-fault battery
/// has teeth: flipping one on must make a documented test fail.
#[cfg(feature = "planted")]
pub mod planted {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RETRY_AFTER_FSYNC_FAIL: AtomicBool = AtomicBool::new(false);

    /// Plants (or clears) the "retry after a failed fsync" bug: the
    /// writer retries the fsync once and, if the retry reports
    /// success, acknowledges the batch. On a device that dropped its
    /// dirty pages at the first failure (the fsyncgate semantics the
    /// `FaultyStorage` injector models), this silently loses every
    /// record since the last good sync — exactly what the fail-stop
    /// poisoning policy forbids.
    pub fn set_retry_after_fsync_fail_bug(on: bool) {
        RETRY_AFTER_FSYNC_FAIL.store(on, Ordering::SeqCst);
    }

    /// Whether the retry-after-fsync-fail bug is active.
    pub fn retry_after_fsync_fail_bug() -> bool {
        RETRY_AFTER_FSYNC_FAIL.load(Ordering::Relaxed)
    }
}
