//! The segmented write-ahead log: group commit, GC-driven segment
//! truncation, crash-point fault injection, and the recovery scan.
//!
//! # Group commit
//!
//! Sessions call [`Wal::submit_commit`] while still holding the shard
//! locks of their commit, so the append order of commit records equals
//! the serialization order of conflicting transactions. The call only
//! enqueues bytes and returns the record's LSN; the actual `write` +
//! `fsync` happens on a dedicated writer thread that drains whatever
//! accumulated since its last flush in one batch. After releasing its
//! locks the session calls [`Wal::wait_durable`] with its LSN — commit
//! backpressure is exactly "wait for the flush that covers my record",
//! and one fsync acknowledges every record in the batch. Flushes are
//! sequential in LSN order, so a durable later record implies every
//! earlier record is durable too.
//!
//! # GC-driven checkpointing
//!
//! Each commit record is charged to the segment holding it. When the
//! engine's deletion sweep (the paper's `D(G,N)` applied under the
//! noncurrent/C1/C2 policies) deletes a transaction and truncates its
//! versions, it also calls [`Wal::note_deleted`]; a sealed segment
//! whose live count reaches zero is removed from disk. Deletion **is**
//! the checkpoint boundary: no separate checkpoint writer exists, and
//! the log stays proportional to the live graph, not to history.
//!
//! Two guards keep that retirement crash-safe. First, a transaction is
//! only deletable because *later* commits superseded its writes — so
//! when a segment's live count reaches zero it is stamped with the
//! newest enqueued LSN as a retirement barrier, and unlinked only once
//! the durable LSN passes that barrier (otherwise a crash between the
//! unlink and the supersessors' flush would lose both copies). Second,
//! once the log has crashed or is closing, `note_deleted` is a no-op:
//! in-memory commits keep mutating the conflict graph after the log
//! stops accepting records, so GC may judge a transaction noncurrent
//! on the strength of a supersessor that was never logged — no
//! retirement decision made past that point is sound, and the next
//! recovery re-derives live counts from what actually survived.
//!
//! # Crash points
//!
//! [`Wal::arm_crash`] plants a [`CrashPoint`]; the next `submit_commit`
//! executes it instead of appending: the WAL refuses all further work,
//! un-flushed batches are discarded (their sessions were never acked),
//! and the active segment's tail is tampered to match the scenario —
//! nothing appended, append lost from the page cache, a torn half
//! record made durable, or a full record made durable but never
//! acknowledged. Recovery ([`Wal::open`]) then sees exactly the disk a
//! real kill at that point would leave.

use crate::record::{decode, encode_abort, encode_commit, DecodeError, WalRecord};
use deltx_model::{EntityId, TxnId};
use deltx_runtime::{OsRuntime, RtEvent, Runtime, TaskHandle};
use deltx_storage::Value;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration for the durability layer.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the log segments (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one exceeds this many
    /// bytes. Small segments make GC-driven truncation finer-grained.
    pub segment_bytes: u64,
    /// Issue `fsync` after each batch write. Turning this off trades
    /// crash safety for speed (useful in benches and bounded-log
    /// tests); the group-commit protocol is unchanged.
    pub fsync: bool,
}

impl DurabilityConfig {
    /// Durable log under `dir` with default segment size (64 KiB) and
    /// fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 64 * 1024,
            fsync: true,
        }
    }
}

/// Where in the commit protocol a simulated crash strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before the record reaches the log buffer: nothing on disk.
    BeforeAppend,
    /// The record was appended to the in-memory log buffer but the
    /// machine died before the flush: the page cache is lost, nothing
    /// durable.
    AfterAppendBeforeFlush,
    /// The flush was cut mid-record: a torn half record is durable at
    /// the tail.
    MidFlushTorn,
    /// The flush died after exactly this many bytes of the record had
    /// reached the disk: a torn tail cut at an arbitrary offset. The
    /// offset is clamped to the record length; cutting at the full
    /// length behaves like
    /// [`CrashPoint::AfterFlushBeforeVisibility`], at zero like
    /// [`CrashPoint::BeforeAppend`]. Offsets under 8 tear inside the
    /// `[len][crc]` header itself.
    TornWriteAt(u32),
    /// The record is fully durable but the crash hits before the
    /// session is acknowledged or the write becomes visible.
    AfterFlushBeforeVisibility,
}

/// Every parameter-free crash point, for matrix-style harnesses
/// (sweep [`CrashPoint::TornWriteAt`] offsets explicitly — they are a
/// family, not a point).
pub const ALL_CRASH_POINTS: [CrashPoint; 4] = [
    CrashPoint::BeforeAppend,
    CrashPoint::AfterAppendBeforeFlush,
    CrashPoint::MidFlushTorn,
    CrashPoint::AfterFlushBeforeVisibility,
];

/// Errors surfaced to sessions by the durability layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// The WAL crashed (injected or real I/O failure); the record was
    /// not acknowledged and may or may not be durable.
    Crashed,
    /// The WAL was closed.
    Closed,
    /// An I/O error outside the writer thread.
    Io(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Crashed => write!(f, "wal crashed before acknowledging the record"),
            WalError::Closed => write!(f, "wal closed"),
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

/// A commit record surfaced by the recovery scan, in LSN order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// The committed transaction.
    pub txn: TxnId,
    /// The writeset with installed values, in install order.
    pub writes: Vec<(EntityId, Value)>,
    /// Shard indices the transaction touched when it committed.
    pub shards: Vec<u32>,
}

/// What the recovery scan found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryScan {
    /// Segment files present when the scan started.
    pub segments_scanned: u64,
    /// Segments discarded: past a corruption, or holding no commits.
    pub segments_dropped: u64,
    /// Bytes cut from the log (torn tails plus dropped segments).
    pub bytes_discarded: u64,
    /// Whether a torn or corrupt tail was found and truncated.
    pub torn_tail: bool,
    /// Highest LSN surviving the scan (0 when the log was empty).
    pub max_lsn: u64,
}

/// A point-in-time snapshot of WAL activity counters.
#[derive(Clone, Debug, Default)]
pub struct WalStats {
    /// Batched flush operations performed by the writer thread.
    pub flushes: u64,
    /// Records made durable.
    pub records: u64,
    /// Records-per-flush histogram; buckets `1, 2, 3, 4, ≤8, ≤16,
    /// ≤32, >32` (the engine's subset-size buckets).
    pub batch_hist: [u64; 8],
    /// Segments rolled since open.
    pub segments_created: u64,
    /// Segments removed because GC deleted every commit they held.
    pub segments_truncated: u64,
    /// Highest acknowledged (durable) LSN.
    pub durable_lsn: u64,
    /// Segments currently on disk.
    pub segments_live: u64,
    /// Total nanoseconds the writer task spent inside `write`+`fsync`,
    /// measured on the runtime clock (virtual under simulation).
    pub flush_nanos: u64,
}

impl WalStats {
    /// Mean records per flush (batch size the group commit achieved).
    pub fn mean_batch(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.records as f64 / self.flushes as f64
        }
    }
}

/// Bucket index for a batch of `n` records (mirrors the engine's
/// subset-size histogram bounds).
fn batch_bucket(n: u64) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3 => 2,
        4 => 3,
        5..=8 => 4,
        9..=16 => 5,
        17..=32 => 6,
        _ => 7,
    }
}

struct SegmentMeta {
    path: PathBuf,
    /// Commit records charged to this segment that GC has not yet
    /// deleted. Sealed segments with `live == 0` are removed.
    live: usize,
    sealed: bool,
    /// Bytes enqueued to this segment (durable or pending).
    bytes: u64,
    /// Bytes the writer thread has flushed.
    durable: u64,
    /// Newest enqueued LSN at the moment `live` reached zero. The
    /// commits that superseded this segment's transactions (what made
    /// them deletable) have LSNs at or below this; the segment may
    /// only be unlinked once `durable_lsn` passes it, or a crash
    /// between the unlink and their flush would lose BOTH copies.
    retire_barrier: u64,
}

struct WalState {
    segments: BTreeMap<u64, SegmentMeta>,
    active: u64,
    /// Which segment holds each live transaction's commit record.
    txn_seg: HashMap<TxnId, u64>,
    /// Encoded bytes awaiting the writer thread, coalesced per segment.
    pending: Vec<(u64, Vec<u8>)>,
    pending_recs: u64,
    next_lsn: u64,
    /// LSN of the newest enqueued record.
    last_enqueued: u64,
    durable_lsn: u64,
    /// Segments the writer thread is flushing right now.
    writing: HashSet<u64>,
    writer_busy: bool,
    armed: Option<CrashPoint>,
    crashed: bool,
    closing: bool,
    /// The writer task has returned; nothing will ever flush again.
    writer_exited: bool,
}

#[derive(Default)]
struct WalCounters {
    flushes: AtomicU64,
    records: AtomicU64,
    batch_hist: [AtomicU64; 8],
    segments_created: AtomicU64,
    segments_truncated: AtomicU64,
    flush_nanos: AtomicU64,
}

struct WalInner {
    cfg: DurabilityConfig,
    /// Host runtime: spawns the writer task, times flushes, and backs
    /// the two eventcounts below. Virtual under the simulation testkit.
    rt: Arc<dyn Runtime>,
    state: Mutex<WalState>,
    /// Wakes the writer task when work arrives or the log closes.
    work_ev: Arc<dyn RtEvent>,
    /// Wakes sessions when `durable_lsn` advances, the log crashes, or
    /// the writer task exits.
    durable_ev: Arc<dyn RtEvent>,
    stats: WalCounters,
}

impl WalInner {
    fn lock(&self) -> MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:08}.wal"))
}

/// Removes every sealed segment whose commits are all deleted and that
/// no in-flight or pending write still references.
fn collect_dead(st: &mut WalState, active: u64, stats: &WalCounters) {
    let dead: Vec<u64> = st
        .segments
        .iter()
        .filter(|(id, m)| {
            m.sealed
                && m.live == 0
                && st.durable_lsn >= m.retire_barrier
                && **id != active
                && !st.writing.contains(id)
                && !st.pending.iter().any(|(s, _)| s == *id)
        })
        .map(|(id, _)| *id)
        .collect();
    for id in dead {
        if let Some(m) = st.segments.remove(&id) {
            let _ = std::fs::remove_file(&m.path);
            stats.segments_truncated.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The write-ahead log. One instance per engine; cheap to share via
/// `Arc`.
pub struct Wal {
    inner: Arc<WalInner>,
    writer: Mutex<Option<TaskHandle>>,
}

impl Wal {
    /// Opens (or creates) the log under `cfg.dir`, scanning any
    /// surviving segments.
    ///
    /// Returns the log ready for new appends, the commit records that
    /// survived the crash in LSN order (for the engine to replay), and
    /// a summary of what the scan found. Corruption is handled by
    /// truncation: the first invalid byte ends the log — the file is
    /// cut back to its valid prefix and every later segment is
    /// deleted.
    pub fn open(cfg: DurabilityConfig) -> std::io::Result<(Wal, Vec<CommitRecord>, RecoveryScan)> {
        Wal::open_on(cfg, OsRuntime::shared())
    }

    /// Like [`Wal::open`] but on an explicit [`Runtime`]. The engine
    /// passes its own runtime so the writer task, the flush timing,
    /// and every waiter wakeup run under the host scheduler — virtual
    /// and deterministic under the simulation testkit.
    pub fn open_on(
        cfg: DurabilityConfig,
        rt: Arc<dyn Runtime>,
    ) -> std::io::Result<(Wal, Vec<CommitRecord>, RecoveryScan)> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".wal") {
                if let Ok(id) = stem.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();

        let mut scan = RecoveryScan {
            segments_scanned: ids.len() as u64,
            ..Default::default()
        };
        let mut commits: Vec<CommitRecord> = Vec::new();
        let mut segments: BTreeMap<u64, SegmentMeta> = BTreeMap::new();
        let mut txn_seg: HashMap<TxnId, u64> = HashMap::new();
        let mut last_lsn = 0u64;
        let mut halted = false;

        for (pos, &id) in ids.iter().enumerate() {
            let path = segment_path(&cfg.dir, id);
            if halted {
                // Everything past a corruption is unusable: records
                // there may depend on lost predecessors.
                scan.segments_dropped += 1;
                scan.bytes_discarded += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(&path)?;
                continue;
            }
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let mut off = 0usize;
            let mut seg_commits = 0usize;
            loop {
                match decode(&bytes[off..]) {
                    Ok(None) => break,
                    Ok(Some((rec, used))) => {
                        if rec.lsn() <= last_lsn && last_lsn != 0 {
                            // Stale or replayed bytes: the log ends at
                            // the last strictly-increasing record.
                            halted = true;
                            break;
                        }
                        last_lsn = rec.lsn();
                        if let WalRecord::Commit {
                            lsn,
                            txn,
                            writes,
                            shards,
                        } = rec
                        {
                            seg_commits += 1;
                            txn_seg.insert(txn, id);
                            commits.push(CommitRecord {
                                lsn,
                                txn,
                                writes,
                                shards,
                            });
                        }
                        off += used;
                    }
                    Err(DecodeError::Torn | DecodeError::BadCrc | DecodeError::Corrupt) => {
                        halted = true;
                        break;
                    }
                }
            }
            if off < bytes.len() {
                // Cut the file back to its valid prefix.
                scan.torn_tail = true;
                scan.bytes_discarded += (bytes.len() - off) as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(off as u64)?;
                f.sync_data()?;
            }
            if seg_commits == 0 {
                // Abort-only or emptied segment: nothing to replay,
                // nothing to keep.
                scan.segments_dropped += 1;
                scan.bytes_discarded += off as u64;
                std::fs::remove_file(&path)?;
                continue;
            }
            segments.insert(
                id,
                SegmentMeta {
                    path,
                    live: seg_commits,
                    sealed: true,
                    bytes: off as u64,
                    durable: off as u64,
                    retire_barrier: 0,
                },
            );
            let _ = pos;
        }
        scan.max_lsn = last_lsn;

        let active = ids.last().map_or(0, |m| m + 1);
        segments.insert(
            active,
            SegmentMeta {
                path: segment_path(&cfg.dir, active),
                live: 0,
                sealed: false,
                bytes: 0,
                durable: 0,
                retire_barrier: 0,
            },
        );

        let inner = Arc::new(WalInner {
            cfg,
            work_ev: rt.event(),
            durable_ev: rt.event(),
            rt: Arc::clone(&rt),
            state: Mutex::new(WalState {
                segments,
                active,
                txn_seg,
                pending: Vec::new(),
                pending_recs: 0,
                next_lsn: last_lsn + 1,
                last_enqueued: last_lsn,
                durable_lsn: last_lsn,
                writing: HashSet::new(),
                writer_busy: false,
                armed: None,
                crashed: false,
                closing: false,
                writer_exited: false,
            }),
            stats: WalCounters::default(),
        });
        let writer = {
            let inner = Arc::clone(&inner);
            rt.spawn("deltx-wal", Box::new(move || writer_loop(&inner)))
        };
        Ok((
            Wal {
                inner,
                writer: Mutex::new(Some(writer)),
            },
            commits,
            scan,
        ))
    }

    /// Enqueues a commit record and returns its LSN.
    ///
    /// Call while still holding the commit's shard locks so the log
    /// order of conflicting commits matches their serialization order;
    /// the record is *not* durable until [`Wal::wait_durable`] returns
    /// for the LSN. If a [`CrashPoint`] is armed, the crash executes
    /// here instead and `Err(Crashed)` is returned.
    pub fn submit_commit(
        &self,
        txn: TxnId,
        writes: &[(EntityId, Value)],
        shards: &[u32],
    ) -> Result<u64, WalError> {
        let inner = &self.inner;
        let mut st = inner.lock();
        if st.crashed {
            return Err(WalError::Crashed);
        }
        if st.closing {
            return Err(WalError::Closed);
        }
        if let Some(cp) = st.armed.take() {
            let lsn = st.next_lsn;
            let bytes = encode_commit(lsn, txn, writes, shards);
            self.execute_crash(st, cp, &bytes);
            return Err(WalError::Crashed);
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.last_enqueued = lsn;
        let bytes = encode_commit(lsn, txn, writes, shards);
        let seg = self.enqueue(&mut st, bytes);
        st.txn_seg.insert(txn, seg);
        if let Some(m) = st.segments.get_mut(&seg) {
            m.live += 1;
        }
        drop(st);
        inner.work_ev.notify();
        Ok(lsn)
    }

    /// Enqueues an abort record (fire-and-forget: aborts need no
    /// durability — absence from the log already means aborted).
    pub fn submit_abort(&self, txn: TxnId) {
        let inner = &self.inner;
        let mut st = inner.lock();
        if st.crashed || st.closing {
            return;
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.last_enqueued = lsn;
        let bytes = encode_abort(lsn, txn);
        self.enqueue(&mut st, bytes);
        drop(st);
        inner.work_ev.notify();
    }

    /// Appends encoded bytes to the active segment, rolling first if
    /// the segment is full. Returns the segment charged.
    fn enqueue(&self, st: &mut WalState, bytes: Vec<u8>) -> u64 {
        let len = bytes.len() as u64;
        let seg_bytes = st.segments.get(&st.active).map_or(0, |m| m.bytes);
        if seg_bytes > 0 && seg_bytes + len > self.inner.cfg.segment_bytes {
            if let Some(m) = st.segments.get_mut(&st.active) {
                m.sealed = true;
            }
            let next = st.active + 1;
            st.segments.insert(
                next,
                SegmentMeta {
                    path: segment_path(&self.inner.cfg.dir, next),
                    live: 0,
                    sealed: false,
                    bytes: 0,
                    durable: 0,
                    retire_barrier: 0,
                },
            );
            st.active = next;
            self.inner
                .stats
                .segments_created
                .fetch_add(1, Ordering::Relaxed);
        }
        let seg = st.active;
        if let Some(m) = st.segments.get_mut(&seg) {
            m.bytes += len;
        }
        match st.pending.last_mut() {
            Some((s, buf)) if *s == seg => buf.extend_from_slice(&bytes),
            _ => st.pending.push((seg, bytes)),
        }
        st.pending_recs += 1;
        seg
    }

    /// Blocks until the record at `lsn` is durable (its batch was
    /// flushed). `Err(Crashed)` means the record was never flushed —
    /// the commit must not be acknowledged. `Err(Closed)` means the
    /// writer task exited before covering the record (a shutdown raced
    /// the submission): equally un-acked, and the waiter must not
    /// hang.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), WalError> {
        let inner = &self.inner;
        loop {
            let key = inner.durable_ev.prepare();
            {
                let st = inner.lock();
                if st.durable_lsn >= lsn {
                    return Ok(());
                }
                if st.crashed {
                    return Err(WalError::Crashed);
                }
                if st.writer_exited {
                    return Err(WalError::Closed);
                }
            }
            inner.durable_ev.wait(key);
        }
    }

    /// Reports transactions deleted by the engine's GC sweep. Sealed
    /// segments whose every commit is now deleted are removed from
    /// disk — `D(G,N)` deletion acting as the checkpoint boundary.
    pub fn note_deleted(&self, deleted: &[TxnId]) {
        if deleted.is_empty() {
            return;
        }
        let mut st = self.inner.lock();
        if st.crashed || st.closing {
            // After the log stops accepting records, in-memory commits
            // still mutate the conflict graph, so GC can judge a
            // transaction noncurrent on the strength of a supersessor
            // that was never logged. No retirement decision made past
            // this point is sound; the next recovery re-derives live
            // counts from what actually survived on disk.
            return;
        }
        let barrier = st.last_enqueued;
        for t in deleted {
            if let Some(seg) = st.txn_seg.remove(t) {
                if let Some(m) = st.segments.get_mut(&seg) {
                    m.live = m.live.saturating_sub(1);
                    if m.live == 0 {
                        // The supersessors that made these commits
                        // deletable are enqueued at or below here;
                        // hold the unlink until they are durable.
                        m.retire_barrier = barrier;
                    }
                }
            }
        }
        let active = st.active;
        collect_dead(&mut st, active, &self.inner.stats);
    }

    /// Arms a crash: the next `submit_commit` executes `cp` instead of
    /// appending, after which every call fails with
    /// [`WalError::Crashed`] until the log is re-opened.
    pub fn arm_crash(&self, cp: CrashPoint) {
        self.inner.lock().armed = Some(cp);
    }

    /// Whether an injected or real crash has killed the log.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Runs the armed crash scenario: stop the writer, discard
    /// un-flushed batches, tamper the active segment's tail so the
    /// disk matches what a real kill at `cp` would leave.
    fn execute_crash(&self, mut st: MutexGuard<'_, WalState>, cp: CrashPoint, record: &[u8]) {
        let inner = &self.inner;
        st.crashed = true;
        drop(st);
        inner.work_ev.notify();
        // Let an in-flight flush finish: those records were written
        // before the crash point and their sessions will be acked,
        // which is correct — they are durable.
        let mut st = loop {
            let key = inner.durable_ev.prepare();
            let g = inner.lock();
            if !g.writer_busy {
                break g;
            }
            drop(g);
            inner.durable_ev.wait(key);
        };
        // Batches that never reached the writer die in the page
        // cache; their sessions get `Crashed`, never an ack.
        st.pending.clear();
        st.pending_recs = 0;
        let active = st.active;
        let (path, durable) = match st.segments.get(&active) {
            Some(m) => (m.path.clone(), m.durable),
            None => {
                drop(st);
                inner.durable_ev.notify();
                return;
            }
        };
        drop(st);
        let tamper = || -> std::io::Result<()> {
            let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
            match cp {
                CrashPoint::BeforeAppend => {}
                CrashPoint::AfterAppendBeforeFlush => {
                    // Appended, never flushed: the bytes existed only
                    // in the page cache. Write then cut back to the
                    // durable prefix — net effect, nothing survives.
                    f.write_all(record)?;
                    drop(f);
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(durable)?;
                    f.sync_data()?;
                }
                CrashPoint::MidFlushTorn => {
                    // The flush died halfway through the record: a
                    // durable torn tail for recovery to cut off.
                    f.write_all(&record[..record.len() / 2])?;
                    f.sync_data()?;
                }
                CrashPoint::TornWriteAt(off) => {
                    // The flush died after exactly `off` bytes — the
                    // general torn tail, able to cut inside the
                    // `[len][crc]` header, one byte short of intact,
                    // or anywhere between.
                    let cut = (off as usize).min(record.len());
                    f.write_all(&record[..cut])?;
                    f.sync_data()?;
                }
                CrashPoint::AfterFlushBeforeVisibility => {
                    // Fully durable, never acknowledged: recovery must
                    // replay it exactly once.
                    f.write_all(record)?;
                    f.sync_data()?;
                }
            }
            Ok(())
        };
        // A tamper failure leaves the disk at the durable prefix,
        // which is itself a valid crash image.
        let _ = tamper();
        inner.durable_ev.notify();
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> WalStats {
        let s = &self.inner.stats;
        let mut out = WalStats {
            flushes: s.flushes.load(Ordering::Relaxed),
            records: s.records.load(Ordering::Relaxed),
            batch_hist: [0; 8],
            segments_created: s.segments_created.load(Ordering::Relaxed),
            segments_truncated: s.segments_truncated.load(Ordering::Relaxed),
            durable_lsn: 0,
            segments_live: 0,
            flush_nanos: s.flush_nanos.load(Ordering::Relaxed),
        };
        for (i, b) in s.batch_hist.iter().enumerate() {
            out.batch_hist[i] = b.load(Ordering::Relaxed);
        }
        let st = self.inner.lock();
        out.durable_lsn = st.durable_lsn;
        out.segments_live = st.segments.len() as u64;
        out
    }

    /// Drains pending records, flushes them, and joins the writer
    /// task. Called by the engine on shutdown; idempotent. Waiters on
    /// records the final drain covers are acked `Ok`; anything the
    /// writer can no longer flush surfaces as [`WalError::Closed`] or
    /// [`WalError::Crashed`], never a hang.
    pub fn close(&self) {
        {
            let mut st = self.inner.lock();
            st.closing = true;
        }
        self.inner.work_ev.notify();
        let handle = self.writer.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            h.join();
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.close();
    }
}

/// The group-commit writer: batches whatever accumulated since the
/// last flush, writes and syncs it, then advances `durable_lsn` and
/// wakes every waiting session in one shot. On every exit path it
/// marks `writer_exited` and notifies the durable event, so no waiter
/// can outlive it blocked.
fn writer_loop(inner: &WalInner) {
    loop {
        let (chunks, nrec, last) = loop {
            let key = inner.work_ev.prepare();
            let mut st = inner.lock();
            if st.crashed || (st.pending.is_empty() && st.closing) {
                st.writer_busy = false;
                st.writer_exited = true;
                drop(st);
                inner.durable_ev.notify();
                return;
            }
            if !st.pending.is_empty() {
                let chunks = std::mem::take(&mut st.pending);
                let nrec = std::mem::replace(&mut st.pending_recs, 0);
                let last = st.last_enqueued;
                st.writer_busy = true;
                st.writing = chunks.iter().map(|(s, _)| *s).collect();
                break (chunks, nrec, last);
            }
            drop(st);
            inner.work_ev.wait(key);
        };

        let t0 = inner.rt.now();
        let mut written: Vec<(u64, u64)> = Vec::with_capacity(chunks.len());
        let io = (|| -> std::io::Result<()> {
            let mut files: Vec<File> = Vec::with_capacity(chunks.len());
            for (seg, bytes) in &chunks {
                let path = segment_path(&inner.cfg.dir, *seg);
                let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
                f.write_all(bytes)?;
                written.push((*seg, bytes.len() as u64));
                files.push(f);
            }
            if inner.cfg.fsync {
                for f in &files {
                    f.sync_data()?;
                }
            }
            Ok(())
        })();

        let flush_nanos = inner.rt.now().saturating_sub(t0).as_nanos() as u64;
        inner
            .stats
            .flush_nanos
            .fetch_add(flush_nanos, Ordering::Relaxed);

        let mut st = inner.lock();
        st.writing.clear();
        st.writer_busy = false;
        match io {
            Ok(()) => {
                for (seg, len) in written {
                    if let Some(m) = st.segments.get_mut(&seg) {
                        m.durable += len;
                    }
                }
                st.durable_lsn = last;
                inner.stats.flushes.fetch_add(1, Ordering::Relaxed);
                inner.stats.records.fetch_add(nrec, Ordering::Relaxed);
                inner.stats.batch_hist[batch_bucket(nrec)].fetch_add(1, Ordering::Relaxed);
                // Batch-boundary signature for schedule-space search:
                // which group-commit batch sizes this interleaving
                // produced (bucketed like the histogram).
                inner.rt.emit("wal_batch", batch_bucket(nrec) as u64);
                let active = st.active;
                collect_dead(&mut st, active, &inner.stats);
                drop(st);
                inner.durable_ev.notify();
            }
            Err(_) => {
                // A real I/O failure is a crash: un-acked sessions
                // must see an error, never a false ack.
                st.crashed = true;
                st.pending.clear();
                st.pending_recs = 0;
                st.writer_exited = true;
                drop(st);
                inner.durable_ev.notify();
                return;
            }
        }
    }
}
