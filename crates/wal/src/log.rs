//! The segmented write-ahead log: group commit, GC-driven segment
//! truncation, crash-point and disk-fault injection, and the recovery
//! scrub.
//!
//! # Group commit
//!
//! Sessions call [`Wal::submit_commit`] while still holding the shard
//! locks of their commit, so the append order of commit records equals
//! the serialization order of conflicting transactions. The call only
//! enqueues bytes and returns the record's LSN; the actual `write` +
//! `fsync` happens on a dedicated writer thread that drains whatever
//! accumulated since its last flush in one batch. After releasing its
//! locks the session calls [`Wal::wait_durable`] with its LSN — commit
//! backpressure is exactly "wait for the flush that covers my record",
//! and one fsync acknowledges every record in the batch. Flushes are
//! sequential in LSN order, so a durable later record implies every
//! earlier record is durable too.
//!
//! # The disk can say no
//!
//! All file IO goes through the [`WalStorage`] VFS, and the writer
//! applies a per-error-class policy (see [`StorageError`]):
//!
//! * **Transient** append errors retry with bounded exponential
//!   backoff on the [`Runtime`] clock (virtual under simulation, real
//!   in production). Budget exhausted ⇒ fail-stop.
//! * **`fsync` failure poisons the log, fail-stop, no retry.** After a
//!   failed fsync the page cache contents are unknowable — many
//!   kernels *drop* the dirty pages, so a retried fsync "succeeds"
//!   with the data gone (the "fsyncgate" failure mode). The only safe
//!   acknowledgement is none: every waiter gets
//!   [`WalError::Poisoned`], the health flips to
//!   [`WalHealth::Poisoned`], and the engine runs loudly degraded
//!   (reads fine, writes refused) until the log is re-opened.
//! * **`ENOSPC` degrades gracefully before refusing.** The writer
//!   raises [`Wal::space_pressure`] and retries on a longer backoff so
//!   the engine's GC can escalate, delete, and free segments; only if
//!   the device stays full through the whole escalation window does
//!   the log fail-stop with [`WalError::NoSpace`].
//!
//! # GC-driven checkpointing
//!
//! Each commit record is charged to the segment holding it. When the
//! engine's deletion sweep (the paper's `D(G,N)` applied under the
//! noncurrent/C1/C2 policies) deletes a transaction and truncates its
//! versions, it also calls [`Wal::note_deleted`]; a sealed segment
//! whose live count reaches zero is removed from disk. Deletion **is**
//! the checkpoint boundary: no separate checkpoint writer exists, and
//! the log stays proportional to the live graph, not to history.
//!
//! Two guards keep that retirement crash-safe. First, a transaction is
//! only deletable because *later* commits superseded its writes — so
//! each segment tracks a **superseded ceiling**: the highest LSN of
//! any commit that took over an entity last written in the segment.
//! When the live count reaches zero that ceiling bounds every direct
//! supersessor, and the segment is unlinked only once `durable_lsn`
//! passes it (otherwise a crash between the unlink and the
//! supersessors' flush would lose BOTH copies of an entity's current
//! value). Tracking the actual supersessors — rather than stamping the
//! newest enqueued LSN — matters under `ENOSPC`: the ceiling of an old
//! segment is usually already durable, so GC pressure can free space
//! even while the newest record is stuck un-flushed. Second, once the
//! log has crashed or is closing, `note_deleted` is a no-op: in-memory
//! commits keep mutating the conflict graph after the log stops
//! accepting records, so GC may judge a transaction noncurrent on the
//! strength of a supersessor that was never logged — no retirement
//! decision made past that point is sound, and the next recovery
//! re-derives live counts from what actually survived.
//!
//! # Crash points
//!
//! [`Wal::arm_crash`] plants a [`CrashPoint`]; the next `submit_commit`
//! executes it instead of appending: the WAL refuses all further work,
//! un-flushed batches are discarded (their sessions were never acked),
//! and the active segment's tail is tampered through the VFS to match
//! the scenario. Recovery ([`Wal::open`]) then sees exactly the disk a
//! real kill at that point would leave.
//!
//! # Recovery scrubbing
//!
//! Recovery decodes **every** segment, then classifies damage by
//! position. Invalid bytes with no valid records anywhere after them
//! are a torn *tail* — the expected crash artifact — and are cut back
//! to the valid prefix. Invalid bytes in a sealed *mid-log* segment
//! (valid records exist later) are corruption the crash protocol
//! cannot produce: acknowledged commits are missing while later state
//! survives. That is never silently dropped — under the default
//! [`RecoverPolicy::Strict`] the open refuses loudly; under
//! [`RecoverPolicy::Quarantine`] the whole segment is moved aside and
//! the lost LSN range is reported per segment in
//! [`RecoveryScan::quarantined`].

use crate::record::{decode, encode_abort, encode_commit, DecodeError, WalRecord};
use crate::storage::{FsStorage, StorageError, StorageResult, WalStorage};
use deltx_model::{EntityId, TxnId};
use deltx_runtime::{Backoff, OsRuntime, RtEvent, Runtime, TaskHandle};
use deltx_storage::Value;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// What recovery does when it finds corruption in a sealed mid-log
/// segment — damage that cannot be a crash artifact (valid records
/// exist *after* it, so acknowledged commits are missing while later
/// state survives).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoverPolicy {
    /// Refuse to open. The error names the segment and the lost LSN
    /// range; nothing on disk is modified. The default: silent loss is
    /// never acceptable without an explicit opt-in.
    #[default]
    Strict,
    /// Quarantine the damaged segment (move it out of the log
    /// namespace, keep it for forensics) and open with the surviving
    /// records, reporting exactly which LSN ranges are gone in
    /// [`RecoveryScan::quarantined`]. The whole segment is dropped —
    /// keeping its valid prefix in memory only would lose those
    /// records again on the next crash.
    Quarantine,
}

/// Configuration for the durability layer.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the log segments (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the active one exceeds this many
    /// bytes. Small segments make GC-driven truncation finer-grained.
    pub segment_bytes: u64,
    /// Issue `fsync` after each batch write. Turning this off trades
    /// crash safety for speed (useful in benches and bounded-log
    /// tests); the group-commit protocol is unchanged.
    pub fsync: bool,
    /// The storage backend. `None` uses the real filesystem
    /// ([`FsStorage`] under `dir`); tests inject a
    /// [`crate::FaultyStorage`] here to drive disk-fault schedules.
    pub storage: Option<Arc<dyn WalStorage>>,
    /// What recovery does about mid-log corruption (see
    /// [`RecoverPolicy`]). Torn tails are always cut regardless.
    pub recover: RecoverPolicy,
}

impl DurabilityConfig {
    /// Durable log under `dir` with default segment size (64 KiB),
    /// fsync on, the real filesystem, and strict recovery.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 64 * 1024,
            fsync: true,
            storage: None,
            recover: RecoverPolicy::Strict,
        }
    }
}

/// Where in the commit protocol a simulated crash strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before the record reaches the log buffer: nothing on disk.
    BeforeAppend,
    /// The record was appended to the in-memory log buffer but the
    /// machine died before the flush: the page cache is lost, nothing
    /// durable.
    AfterAppendBeforeFlush,
    /// The flush was cut mid-record: a torn half record is durable at
    /// the tail.
    MidFlushTorn,
    /// The flush died after exactly this many bytes of the record had
    /// reached the disk: a torn tail cut at an arbitrary offset. The
    /// offset is clamped to the record length; cutting at the full
    /// length behaves like
    /// [`CrashPoint::AfterFlushBeforeVisibility`], at zero like
    /// [`CrashPoint::BeforeAppend`]. Offsets under 8 tear inside the
    /// `[len][crc]` header itself.
    TornWriteAt(u32),
    /// The record is fully durable but the crash hits before the
    /// session is acknowledged or the write becomes visible.
    AfterFlushBeforeVisibility,
}

/// Every parameter-free crash point, for matrix-style harnesses
/// (sweep [`CrashPoint::TornWriteAt`] offsets explicitly — they are a
/// family, not a point).
pub const ALL_CRASH_POINTS: [CrashPoint; 4] = [
    CrashPoint::BeforeAppend,
    CrashPoint::AfterAppendBeforeFlush,
    CrashPoint::MidFlushTorn,
    CrashPoint::AfterFlushBeforeVisibility,
];

/// Errors surfaced to sessions by the durability layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// The WAL crashed (injected or real I/O failure); the record was
    /// not acknowledged and may or may not be durable.
    Crashed,
    /// The WAL was closed.
    Closed,
    /// An I/O error the retry policy could not absorb.
    Io(String),
    /// An `fsync` failed, poisoning the log fail-stop. Nothing written
    /// since the last successful sync can be trusted (the kernel may
    /// have dropped the dirty pages), and retrying the fsync would
    /// risk acknowledging lost data — so the log refuses all further
    /// work until re-opened.
    Poisoned(String),
    /// The device stayed full through the entire GC-pressure
    /// escalation window; the log is fail-stop until re-opened with
    /// space available.
    NoSpace,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Crashed => write!(f, "wal crashed before acknowledging the record"),
            WalError::Closed => write!(f, "wal closed"),
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Poisoned(e) => {
                write!(
                    f,
                    "wal poisoned by fsync failure (fail-stop, no retry): {e}"
                )
            }
            WalError::NoSpace => write!(
                f,
                "wal device full: ENOSPC persisted through GC-pressure escalation"
            ),
        }
    }
}

impl std::error::Error for WalError {}

/// Coarse health of the log, readable lock-free (the engine's commit
/// path gates on this before touching the graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalHealth {
    /// Accepting and flushing records.
    Ok,
    /// An injected or real crash stopped the log.
    Crashed,
    /// An `fsync` failure poisoned the log (see [`WalError::Poisoned`]).
    Poisoned,
    /// The device stayed full through the GC-pressure window.
    NoSpace,
    /// A non-transient I/O failure stopped the writer.
    Failed,
}

impl WalHealth {
    fn from_u8(v: u8) -> WalHealth {
        match v {
            0 => WalHealth::Ok,
            1 => WalHealth::Crashed,
            2 => WalHealth::Poisoned,
            3 => WalHealth::NoSpace,
            _ => WalHealth::Failed,
        }
    }
}

/// A commit record surfaced by the recovery scan, in LSN order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// The committed transaction.
    pub txn: TxnId,
    /// The writeset with installed values, in install order.
    pub writes: Vec<(EntityId, Value)>,
    /// Shard indices the transaction touched when it committed.
    pub shards: Vec<u32>,
}

/// A sealed segment the recovery scrub moved aside because it held
/// mid-log corruption, with the precise LSN range that is gone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuarantinedSegment {
    /// The quarantined segment's id.
    pub segment: u64,
    /// The last surviving LSN before the gap (0 when the log starts
    /// inside the quarantined segment).
    pub lost_after: u64,
    /// The first surviving LSN after the gap (0 when nothing valid
    /// follows — the segment was unreadable at the log's tail).
    pub resume_at: u64,
}

/// What the recovery scan found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryScan {
    /// Segment files present when the scan started.
    pub segments_scanned: u64,
    /// Segments discarded: quarantined, or holding no commits.
    pub segments_dropped: u64,
    /// Bytes cut from the log (torn tails plus dropped segments).
    pub bytes_discarded: u64,
    /// Whether a torn or corrupt tail was found and truncated.
    pub torn_tail: bool,
    /// Highest LSN surviving the scan (0 when the log was empty).
    pub max_lsn: u64,
    /// Sealed mid-log segments quarantined under
    /// [`RecoverPolicy::Quarantine`], each with its lost LSN range.
    /// Empty under [`RecoverPolicy::Strict`] (corruption refuses the
    /// open instead) and on every clean or merely-torn log.
    pub quarantined: Vec<QuarantinedSegment>,
}

/// Upper bounds (nanoseconds) of the [`WalStats::flush_hist`] latency
/// buckets; the last bucket is unbounded.
pub const FLUSH_BUCKET_UPPER_NANOS: [u64; 8] = [
    50_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    20_000_000,
    u64::MAX,
];

/// A point-in-time snapshot of WAL activity counters.
#[derive(Clone, Debug, Default)]
pub struct WalStats {
    /// Batched flush operations performed by the writer thread.
    pub flushes: u64,
    /// Records made durable.
    pub records: u64,
    /// Records-per-flush histogram; buckets `1, 2, 3, 4, ≤8, ≤16,
    /// ≤32, >32` (the engine's subset-size buckets).
    pub batch_hist: [u64; 8],
    /// Segments rolled since open.
    pub segments_created: u64,
    /// Segments removed because GC deleted every commit they held.
    pub segments_truncated: u64,
    /// Highest acknowledged (durable) LSN.
    pub durable_lsn: u64,
    /// Segments currently on disk.
    pub segments_live: u64,
    /// Total nanoseconds the writer task spent inside `write`+`fsync`,
    /// measured on the runtime clock (virtual under simulation).
    pub flush_nanos: u64,
    /// Transient append errors absorbed by the bounded-backoff retry.
    pub append_retries: u64,
    /// Per-flush latency histogram over
    /// [`FLUSH_BUCKET_UPPER_NANOS`] — feeds p50/p99 flush-latency
    /// estimates in `engine_stress --fsync`.
    pub flush_hist: [u64; 8],
}

impl WalStats {
    /// Mean records per flush (batch size the group commit achieved).
    pub fn mean_batch(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.records as f64 / self.flushes as f64
        }
    }

    /// Estimated flush-latency quantile `q` in nanoseconds, read from
    /// the bucket upper bounds (the last bucket reports its lower
    /// bound). 0 when no flushes happened.
    pub fn flush_quantile_nanos(&self, q: f64) -> u64 {
        let total: u64 = self.flush_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.flush_hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 7 {
                    FLUSH_BUCKET_UPPER_NANOS[6]
                } else {
                    FLUSH_BUCKET_UPPER_NANOS[i]
                };
            }
        }
        FLUSH_BUCKET_UPPER_NANOS[6]
    }
}

/// Bucket index for a batch of `n` records (mirrors the engine's
/// subset-size histogram bounds).
fn batch_bucket(n: u64) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3 => 2,
        4 => 3,
        5..=8 => 4,
        9..=16 => 5,
        17..=32 => 6,
        _ => 7,
    }
}

/// Bucket index for a flush that took `nanos`.
fn flush_bucket(nanos: u64) -> usize {
    FLUSH_BUCKET_UPPER_NANOS
        .iter()
        .position(|&hi| nanos <= hi)
        .unwrap_or(7)
}

struct SegmentMeta {
    /// Commit records charged to this segment that GC has not yet
    /// deleted. Sealed segments with `live == 0` are removed.
    live: usize,
    sealed: bool,
    /// Bytes enqueued to this segment (durable or pending).
    bytes: u64,
    /// Bytes the writer thread has flushed.
    durable: u64,
    /// Highest LSN of any commit that superseded an entity last
    /// written in this segment. When `live` reaches zero, every
    /// commit here was deleted *because* such supersessors exist —
    /// all of them at or below this ceiling — so the segment may only
    /// be unlinked once `durable_lsn` passes it, or a crash between
    /// the unlink and their flush would lose BOTH copies.
    superseded_ceiling: u64,
    /// The ceiling frozen at the moment `live` reached zero.
    retire_barrier: u64,
}

struct WalState {
    segments: BTreeMap<u64, SegmentMeta>,
    active: u64,
    /// Which segment holds each live transaction's commit record.
    txn_seg: HashMap<TxnId, u64>,
    /// Each entity's current writer: `(lsn, segment)` of the newest
    /// commit that wrote it. Moving an entity's writer off a segment
    /// folds the new LSN into the old segment's superseded ceiling.
    current_writer: HashMap<EntityId, (u64, u64)>,
    /// Encoded bytes awaiting the writer thread, coalesced per segment.
    pending: Vec<(u64, Vec<u8>)>,
    pending_recs: u64,
    next_lsn: u64,
    /// LSN of the newest enqueued record.
    last_enqueued: u64,
    durable_lsn: u64,
    /// Segments the writer thread is flushing right now.
    writing: HashSet<u64>,
    writer_busy: bool,
    armed: Option<CrashPoint>,
    crashed: bool,
    /// Why the log stopped, when it stopped for a reason more precise
    /// than [`WalError::Crashed`] (poisoned fsync, exhausted ENOSPC,
    /// exhausted transient retries).
    fail: Option<WalError>,
    closing: bool,
    /// The writer task has returned; nothing will ever flush again.
    writer_exited: bool,
}

#[derive(Default)]
struct WalCounters {
    flushes: AtomicU64,
    records: AtomicU64,
    batch_hist: [AtomicU64; 8],
    segments_created: AtomicU64,
    segments_truncated: AtomicU64,
    flush_nanos: AtomicU64,
    append_retries: AtomicU64,
    flush_hist: [AtomicU64; 8],
}

struct WalInner {
    cfg: DurabilityConfig,
    /// All file IO goes through here; production is [`FsStorage`],
    /// tests inject fault schedules.
    storage: Arc<dyn WalStorage>,
    /// Host runtime: spawns the writer task, times flushes, paces the
    /// retry backoff, and backs the two eventcounts below. Virtual
    /// under the simulation testkit.
    rt: Arc<dyn Runtime>,
    state: Mutex<WalState>,
    /// Wakes the writer task when work arrives or the log closes.
    work_ev: Arc<dyn RtEvent>,
    /// Wakes sessions when `durable_lsn` advances, the log crashes, or
    /// the writer task exits.
    durable_ev: Arc<dyn RtEvent>,
    /// Mirror of the log's state machine for lock-free reads
    /// ([`WalHealth`] as `u8`).
    health: AtomicU8,
    /// Raised while an append is parked on `ENOSPC` backoff; the
    /// engine's GC treats it as an immediate-sweep request.
    space_pressure: AtomicBool,
    stats: WalCounters,
}

impl WalInner {
    fn lock(&self) -> MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set_health(&self, h: WalHealth) {
        self.health.store(h as u8, Ordering::Release);
    }
}

/// Removes every sealed segment whose commits are all deleted, whose
/// retirement barrier is durable, and that no in-flight or pending
/// write still references.
fn collect_dead(st: &mut WalState, active: u64, inner: &WalInner) {
    let dead: Vec<u64> = st
        .segments
        .iter()
        .filter(|(id, m)| {
            m.sealed
                && m.live == 0
                && st.durable_lsn >= m.retire_barrier
                && **id != active
                && !st.writing.contains(id)
                && !st.pending.iter().any(|(s, _)| s == *id)
        })
        .map(|(id, _)| *id)
        .collect();
    for id in dead {
        if st.segments.remove(&id).is_some() {
            let _ = inner.storage.unlink(id);
            inner
                .stats
                .segments_truncated
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn io_err(e: StorageError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// One segment's decode result during the recovery scrub.
struct SegScrub {
    id: u64,
    /// Decoded records with their end byte offsets, valid prefix only.
    recs: Vec<(WalRecord, u64)>,
    /// Byte length of the valid record prefix.
    valid_len: u64,
    /// Bytes on disk.
    total_len: u64,
    /// Invalid bytes follow the valid prefix (decode error, trailing
    /// garbage, or an LSN-monotonicity violation).
    bad: bool,
    /// The segment could not be read at all.
    open_err: Option<String>,
}

/// The write-ahead log. One instance per engine; cheap to share via
/// `Arc`.
pub struct Wal {
    inner: Arc<WalInner>,
    writer: Mutex<Option<TaskHandle>>,
}

impl Wal {
    /// Opens (or creates) the log under `cfg.dir`, scrubbing any
    /// surviving segments.
    ///
    /// Returns the log ready for new appends, the commit records that
    /// survived in LSN order (for the engine to replay), and a summary
    /// of what the scrub found. A torn *tail* is cut back to its valid
    /// prefix; corruption in a sealed *mid-log* segment refuses the
    /// open under [`RecoverPolicy::Strict`] or quarantines the segment
    /// (reporting the lost LSN range) under
    /// [`RecoverPolicy::Quarantine`].
    pub fn open(cfg: DurabilityConfig) -> std::io::Result<(Wal, Vec<CommitRecord>, RecoveryScan)> {
        Wal::open_on(cfg, OsRuntime::shared())
    }

    /// Like [`Wal::open`] but on an explicit [`Runtime`]. The engine
    /// passes its own runtime so the writer task, the flush timing,
    /// the retry backoff, and every waiter wakeup run under the host
    /// scheduler — virtual and deterministic under the simulation
    /// testkit.
    pub fn open_on(
        cfg: DurabilityConfig,
        rt: Arc<dyn Runtime>,
    ) -> std::io::Result<(Wal, Vec<CommitRecord>, RecoveryScan)> {
        let storage: Arc<dyn WalStorage> = match &cfg.storage {
            Some(s) => Arc::clone(s),
            None => Arc::new(FsStorage::new(&cfg.dir)),
        };
        storage.init().map_err(io_err)?;
        let ids = storage.list().map_err(io_err)?;

        let mut scan = RecoveryScan {
            segments_scanned: ids.len() as u64,
            ..Default::default()
        };

        // ── Scrub phase 1: decode every segment fully (no global
        // halt — damage is classified by position, below).
        let mut scrubs: Vec<SegScrub> = Vec::with_capacity(ids.len());
        for &id in &ids {
            match storage.open(id) {
                Err(e) => scrubs.push(SegScrub {
                    id,
                    recs: Vec::new(),
                    valid_len: 0,
                    total_len: storage.size(id).unwrap_or(0),
                    bad: true,
                    open_err: Some(e.to_string()),
                }),
                Ok(bytes) => {
                    let mut recs = Vec::new();
                    let mut off = 0usize;
                    let bad = loop {
                        match decode(&bytes[off..]) {
                            Ok(None) => break false,
                            Ok(Some((rec, used))) => {
                                off += used;
                                recs.push((rec, off as u64));
                            }
                            Err(DecodeError::Torn | DecodeError::BadCrc | DecodeError::Corrupt) => {
                                break true
                            }
                        }
                    };
                    scrubs.push(SegScrub {
                        id,
                        recs,
                        valid_len: off as u64,
                        total_len: bytes.len() as u64,
                        bad,
                        open_err: None,
                    });
                }
            }
        }

        // ── Scrub phase 2: enforce strictly-increasing LSNs across
        // the whole log; stale or replayed bytes end a segment's valid
        // prefix exactly like a decode error.
        let mut last_lsn = 0u64;
        for s in &mut scrubs {
            let mut keep = s.recs.len();
            for (i, (rec, _)) in s.recs.iter().enumerate() {
                if rec.lsn() <= last_lsn {
                    keep = i;
                    break;
                }
                last_lsn = rec.lsn();
            }
            if keep < s.recs.len() {
                s.bad = true;
                s.valid_len = if keep == 0 { 0 } else { s.recs[keep - 1].1 };
                s.recs.truncate(keep);
            }
        }

        // ── Scrub phase 3: classify and apply. A bad segment with
        // valid records after it is mid-log corruption (refuse or
        // quarantine); a bad segment with nothing valid after it is a
        // torn tail (cut). An unreadable segment is always treated as
        // corruption — there is no prefix to keep.
        let mut commits: Vec<CommitRecord> = Vec::new();
        let mut segments: BTreeMap<u64, SegmentMeta> = BTreeMap::new();
        let mut txn_seg: HashMap<TxnId, u64> = HashMap::new();
        let mut current_writer: HashMap<EntityId, (u64, u64)> = HashMap::new();
        let mut max_lsn = 0u64;
        for i in 0..scrubs.len() {
            let has_later = scrubs[i + 1..].iter().any(|t| !t.recs.is_empty());
            let s = &scrubs[i];
            if s.open_err.is_some() || (s.bad && has_later) {
                let lost_after = max_lsn;
                let resume_at = scrubs[i + 1..]
                    .iter()
                    .find_map(|t| t.recs.first().map(|(r, _)| r.lsn()))
                    .unwrap_or(0);
                let detail = match &s.open_err {
                    Some(e) => format!("unreadable ({e})"),
                    None => format!("corrupt at byte {}", s.valid_len),
                };
                if cfg.recover == RecoverPolicy::Strict {
                    return Err(std::io::Error::other(format!(
                        "wal: sealed mid-log segment {:08} is {detail}; LSNs after {lost_after} \
                         and before {resume_at} are lost. Refusing to open under \
                         RecoverPolicy::Strict — set RecoverPolicy::Quarantine to move the \
                         segment aside and open with the surviving records",
                        s.id
                    )));
                }
                storage.quarantine(s.id).map_err(io_err)?;
                scan.segments_dropped += 1;
                scan.bytes_discarded += s.total_len;
                scan.quarantined.push(QuarantinedSegment {
                    segment: s.id,
                    lost_after,
                    resume_at,
                });
                continue;
            }
            if s.bad {
                // Torn tail: cut the file back to its valid prefix.
                scan.torn_tail = true;
                scan.bytes_discarded += s.total_len - s.valid_len;
                storage.truncate(s.id, s.valid_len).map_err(io_err)?;
            }
            let mut seg_commits = 0usize;
            for (rec, _) in &s.recs {
                max_lsn = rec.lsn();
                if let WalRecord::Commit {
                    lsn,
                    txn,
                    writes,
                    shards,
                } = rec
                {
                    seg_commits += 1;
                    txn_seg.insert(*txn, s.id);
                    for (e, _) in writes {
                        if let Some((_plsn, pseg)) = current_writer.insert(*e, (*lsn, s.id)) {
                            if pseg != s.id {
                                if let Some(m) = segments.get_mut(&pseg) {
                                    m.superseded_ceiling = m.superseded_ceiling.max(*lsn);
                                }
                            }
                        }
                    }
                    commits.push(CommitRecord {
                        lsn: *lsn,
                        txn: *txn,
                        writes: writes.clone(),
                        shards: shards.clone(),
                    });
                }
            }
            if seg_commits == 0 {
                // Abort-only, emptied, or zero-length segment: nothing
                // to replay, nothing to keep.
                scan.segments_dropped += 1;
                scan.bytes_discarded += s.valid_len;
                storage.unlink(s.id).map_err(io_err)?;
                continue;
            }
            segments.insert(
                s.id,
                SegmentMeta {
                    live: seg_commits,
                    sealed: true,
                    bytes: s.valid_len,
                    durable: s.valid_len,
                    superseded_ceiling: 0,
                    retire_barrier: 0,
                },
            );
        }
        scan.max_lsn = max_lsn;

        let active = ids.last().map_or(0, |m| m + 1);
        segments.insert(
            active,
            SegmentMeta {
                live: 0,
                sealed: false,
                bytes: 0,
                durable: 0,
                superseded_ceiling: 0,
                retire_barrier: 0,
            },
        );

        let inner = Arc::new(WalInner {
            cfg,
            storage,
            work_ev: rt.event(),
            durable_ev: rt.event(),
            rt: Arc::clone(&rt),
            state: Mutex::new(WalState {
                segments,
                active,
                txn_seg,
                current_writer,
                pending: Vec::new(),
                pending_recs: 0,
                next_lsn: max_lsn + 1,
                last_enqueued: max_lsn,
                durable_lsn: max_lsn,
                writing: HashSet::new(),
                writer_busy: false,
                armed: None,
                crashed: false,
                fail: None,
                closing: false,
                writer_exited: false,
            }),
            health: AtomicU8::new(WalHealth::Ok as u8),
            space_pressure: AtomicBool::new(false),
            stats: WalCounters::default(),
        });
        let writer = {
            let inner = Arc::clone(&inner);
            rt.spawn("deltx-wal", Box::new(move || writer_loop(&inner)))
        };
        Ok((
            Wal {
                inner,
                writer: Mutex::new(Some(writer)),
            },
            commits,
            scan,
        ))
    }

    /// Enqueues a commit record and returns its LSN.
    ///
    /// Call while still holding the commit's shard locks so the log
    /// order of conflicting commits matches their serialization order;
    /// the record is *not* durable until [`Wal::wait_durable`] returns
    /// for the LSN. If a [`CrashPoint`] is armed, the crash executes
    /// here instead and `Err(Crashed)` is returned.
    pub fn submit_commit(
        &self,
        txn: TxnId,
        writes: &[(EntityId, Value)],
        shards: &[u32],
    ) -> Result<u64, WalError> {
        let inner = &self.inner;
        let mut st = inner.lock();
        if st.crashed {
            return Err(st.fail.clone().unwrap_or(WalError::Crashed));
        }
        if st.closing {
            return Err(WalError::Closed);
        }
        if let Some(cp) = st.armed.take() {
            let lsn = st.next_lsn;
            let bytes = encode_commit(lsn, txn, writes, shards);
            self.execute_crash(st, cp, &bytes);
            return Err(WalError::Crashed);
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.last_enqueued = lsn;
        let bytes = encode_commit(lsn, txn, writes, shards);
        let seg = self.enqueue(&mut st, bytes);
        st.txn_seg.insert(txn, seg);
        if let Some(m) = st.segments.get_mut(&seg) {
            m.live += 1;
        }
        // Move each written entity's current-writer pointer here; the
        // previous writer's segment learns it has been superseded up
        // to this LSN (its retirement barrier, once fully dead).
        for (e, _) in writes {
            if let Some((_plsn, pseg)) = st.current_writer.insert(*e, (lsn, seg)) {
                if pseg != seg {
                    if let Some(m) = st.segments.get_mut(&pseg) {
                        m.superseded_ceiling = m.superseded_ceiling.max(lsn);
                    }
                }
            }
        }
        drop(st);
        inner.work_ev.notify();
        Ok(lsn)
    }

    /// Enqueues an abort record (fire-and-forget: aborts need no
    /// durability — absence from the log already means aborted).
    pub fn submit_abort(&self, txn: TxnId) {
        let inner = &self.inner;
        let mut st = inner.lock();
        if st.crashed || st.closing {
            return;
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.last_enqueued = lsn;
        let bytes = encode_abort(lsn, txn);
        self.enqueue(&mut st, bytes);
        drop(st);
        inner.work_ev.notify();
    }

    /// Appends encoded bytes to the active segment, rolling first if
    /// the segment is full. Returns the segment charged.
    fn enqueue(&self, st: &mut WalState, bytes: Vec<u8>) -> u64 {
        let len = bytes.len() as u64;
        let seg_bytes = st.segments.get(&st.active).map_or(0, |m| m.bytes);
        if seg_bytes > 0 && seg_bytes + len > self.inner.cfg.segment_bytes {
            if let Some(m) = st.segments.get_mut(&st.active) {
                m.sealed = true;
            }
            let _ = self.inner.storage.seal(st.active);
            let next = st.active + 1;
            st.segments.insert(
                next,
                SegmentMeta {
                    live: 0,
                    sealed: false,
                    bytes: 0,
                    durable: 0,
                    superseded_ceiling: 0,
                    retire_barrier: 0,
                },
            );
            st.active = next;
            self.inner
                .stats
                .segments_created
                .fetch_add(1, Ordering::Relaxed);
        }
        let seg = st.active;
        if let Some(m) = st.segments.get_mut(&seg) {
            m.bytes += len;
        }
        match st.pending.last_mut() {
            Some((s, buf)) if *s == seg => buf.extend_from_slice(&bytes),
            _ => st.pending.push((seg, bytes)),
        }
        st.pending_recs += 1;
        seg
    }

    /// Blocks until the record at `lsn` is durable (its batch was
    /// flushed). An error means the record was never acknowledged:
    /// [`WalError::Poisoned`] / [`WalError::NoSpace`] / [`WalError::Io`]
    /// name the disk fault that stopped the log, [`WalError::Crashed`]
    /// is an injected or unclassified crash, and [`WalError::Closed`]
    /// means the writer task exited before covering the record (a
    /// shutdown raced the submission). The waiter never hangs.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), WalError> {
        let inner = &self.inner;
        loop {
            let key = inner.durable_ev.prepare();
            {
                let st = inner.lock();
                if st.durable_lsn >= lsn {
                    return Ok(());
                }
                if st.crashed {
                    return Err(st.fail.clone().unwrap_or(WalError::Crashed));
                }
                if st.writer_exited {
                    return Err(WalError::Closed);
                }
            }
            inner.durable_ev.wait(key);
        }
    }

    /// Reports transactions deleted by the engine's GC sweep. Sealed
    /// segments whose every commit is now deleted are removed from
    /// disk — `D(G,N)` deletion acting as the checkpoint boundary.
    pub fn note_deleted(&self, deleted: &[TxnId]) {
        if deleted.is_empty() {
            return;
        }
        let mut st = self.inner.lock();
        if st.crashed || st.closing {
            // After the log stops accepting records, in-memory commits
            // still mutate the conflict graph, so GC can judge a
            // transaction noncurrent on the strength of a supersessor
            // that was never logged. No retirement decision made past
            // this point is sound; the next recovery re-derives live
            // counts from what actually survived on disk.
            return;
        }
        for t in deleted {
            if let Some(seg) = st.txn_seg.remove(t) {
                if let Some(m) = st.segments.get_mut(&seg) {
                    m.live = m.live.saturating_sub(1);
                    if m.live == 0 {
                        // Every commit here was deleted because later
                        // commits superseded its writes; those direct
                        // supersessors all sit at or below the
                        // ceiling. Hold the unlink until they are
                        // durable — nothing newer needs to be.
                        m.retire_barrier = m.superseded_ceiling;
                    }
                }
            }
        }
        let active = st.active;
        collect_dead(&mut st, active, &self.inner);
    }

    /// Arms a crash: the next `submit_commit` executes `cp` instead of
    /// appending, after which every call fails with
    /// [`WalError::Crashed`] until the log is re-opened.
    pub fn arm_crash(&self, cp: CrashPoint) {
        self.inner.lock().armed = Some(cp);
    }

    /// Whether an injected or real crash has killed the log.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Coarse health, readable without the state lock. Anything but
    /// [`WalHealth::Ok`] means the log accepts no further records and
    /// the engine should serve reads only.
    pub fn health(&self) -> WalHealth {
        WalHealth::from_u8(self.inner.health.load(Ordering::Acquire))
    }

    /// Why the log stopped, once it has ([`Wal::health`] ≠ `Ok`).
    pub fn fail_reason(&self) -> Option<WalError> {
        let st = self.inner.lock();
        if st.crashed {
            Some(st.fail.clone().unwrap_or(WalError::Crashed))
        } else {
            None
        }
    }

    /// True while an append is parked on `ENOSPC` backoff waiting for
    /// space. The engine's GC treats this as an immediate-sweep
    /// request: deleting transactions retires segments, and a retired
    /// segment may free enough space for the parked append to succeed
    /// before the escalation window closes.
    pub fn space_pressure(&self) -> bool {
        self.inner.space_pressure.load(Ordering::Relaxed)
    }

    /// Runs the armed crash scenario: stop the writer, discard
    /// un-flushed batches, tamper the active segment's tail through
    /// the VFS so the disk matches what a real kill at `cp` would
    /// leave.
    fn execute_crash(&self, mut st: MutexGuard<'_, WalState>, cp: CrashPoint, record: &[u8]) {
        let inner = &self.inner;
        st.crashed = true;
        st.fail = Some(WalError::Crashed);
        drop(st);
        inner.set_health(WalHealth::Crashed);
        inner.work_ev.notify();
        // Let an in-flight flush finish: those records were written
        // before the crash point and their sessions will be acked,
        // which is correct — they are durable.
        let mut st = loop {
            let key = inner.durable_ev.prepare();
            let g = inner.lock();
            if !g.writer_busy {
                break g;
            }
            drop(g);
            inner.durable_ev.wait(key);
        };
        // Batches that never reached the writer die in the page
        // cache; their sessions get `Crashed`, never an ack.
        st.pending.clear();
        st.pending_recs = 0;
        let active = st.active;
        let durable = match st.segments.get(&active) {
            Some(m) => m.durable,
            None => {
                drop(st);
                inner.durable_ev.notify();
                return;
            }
        };
        drop(st);
        let storage = &inner.storage;
        let tamper = || -> StorageResult<()> {
            match cp {
                CrashPoint::BeforeAppend => {}
                CrashPoint::AfterAppendBeforeFlush => {
                    // Appended, never flushed: the bytes existed only
                    // in the page cache. Write then cut back to the
                    // durable prefix — net effect, nothing survives.
                    storage.append(active, record)?;
                    storage.truncate(active, durable)?;
                }
                CrashPoint::MidFlushTorn => {
                    // The flush died halfway through the record: a
                    // durable torn tail for recovery to cut off.
                    storage.append(active, &record[..record.len() / 2])?;
                    storage.fsync(active)?;
                }
                CrashPoint::TornWriteAt(off) => {
                    // The flush died after exactly `off` bytes — the
                    // general torn tail, able to cut inside the
                    // `[len][crc]` header, one byte short of intact,
                    // or anywhere between.
                    let cut = (off as usize).min(record.len());
                    storage.append(active, &record[..cut])?;
                    storage.fsync(active)?;
                }
                CrashPoint::AfterFlushBeforeVisibility => {
                    // Fully durable, never acknowledged: recovery must
                    // replay it exactly once.
                    storage.append(active, record)?;
                    storage.fsync(active)?;
                }
            }
            Ok(())
        };
        // A tamper failure leaves the disk at the durable prefix,
        // which is itself a valid crash image.
        let _ = tamper();
        inner.durable_ev.notify();
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> WalStats {
        let s = &self.inner.stats;
        let mut out = WalStats {
            flushes: s.flushes.load(Ordering::Relaxed),
            records: s.records.load(Ordering::Relaxed),
            batch_hist: [0; 8],
            segments_created: s.segments_created.load(Ordering::Relaxed),
            segments_truncated: s.segments_truncated.load(Ordering::Relaxed),
            durable_lsn: 0,
            segments_live: 0,
            flush_nanos: s.flush_nanos.load(Ordering::Relaxed),
            append_retries: s.append_retries.load(Ordering::Relaxed),
            flush_hist: [0; 8],
        };
        for (i, b) in s.batch_hist.iter().enumerate() {
            out.batch_hist[i] = b.load(Ordering::Relaxed);
        }
        for (i, b) in s.flush_hist.iter().enumerate() {
            out.flush_hist[i] = b.load(Ordering::Relaxed);
        }
        let st = self.inner.lock();
        out.durable_lsn = st.durable_lsn;
        out.segments_live = st.segments.len() as u64;
        out
    }

    /// Drains pending records, flushes them, and joins the writer
    /// task. Called by the engine on shutdown; idempotent. Waiters on
    /// records the final drain covers are acked `Ok`; anything the
    /// writer can no longer flush surfaces as [`WalError::Closed`] or
    /// [`WalError::Crashed`], never a hang.
    pub fn close(&self) {
        {
            let mut st = self.inner.lock();
            st.closing = true;
        }
        self.inner.work_ev.notify();
        let handle = self.writer.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            h.join();
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.close();
    }
}

// ── Writer-side retry policy ────────────────────────────────────────
// Transient errors get a short budget: they either clear in
// microseconds or they are not transient. ENOSPC gets a longer one
// spanning several engine GC ticks, because the cure (retiring dead
// segments) needs the GC to run.
const TRANSIENT_BASE: Duration = Duration::from_micros(200);
const TRANSIENT_MAX: Duration = Duration::from_millis(2);
const TRANSIENT_ATTEMPTS: u32 = 4;
const SPACE_BASE: Duration = Duration::from_micros(500);
const SPACE_MAX: Duration = Duration::from_millis(8);
const SPACE_ATTEMPTS: u32 = 8;

/// Appends one coalesced chunk, absorbing transient errors and
/// `ENOSPC` under bounded backoff per the policy above. Any error
/// returned is terminal for the log.
fn append_with_retry(inner: &WalInner, seg: u64, bytes: &[u8]) -> Result<(), WalError> {
    let mut transient = Backoff::new(TRANSIENT_BASE, TRANSIENT_MAX, TRANSIENT_ATTEMPTS);
    let mut space = Backoff::new(SPACE_BASE, SPACE_MAX, SPACE_ATTEMPTS);
    loop {
        match inner.storage.append(seg, bytes) {
            Ok(()) => {
                inner.space_pressure.store(false, Ordering::Relaxed);
                return Ok(());
            }
            Err(StorageError::Transient(e)) => {
                inner.stats.append_retries.fetch_add(1, Ordering::Relaxed);
                inner.rt.emit("wal_retry", 1);
                let Some(d) = transient.next_delay() else {
                    return Err(WalError::Io(format!(
                        "transient append error persisted past the retry budget: {e}"
                    )));
                };
                if inner.lock().crashed {
                    return Err(WalError::Crashed);
                }
                inner.rt.sleep(d);
            }
            Err(StorageError::NoSpace { .. }) => {
                // Park under pressure: the engine's GC sees the flag
                // and sweeps immediately; a retired segment may free
                // the space this append needs.
                inner.space_pressure.store(true, Ordering::Relaxed);
                inner.rt.emit("wal_pressure", 1);
                let Some(d) = space.next_delay() else {
                    inner.space_pressure.store(false, Ordering::Relaxed);
                    return Err(WalError::NoSpace);
                };
                if inner.lock().crashed {
                    inner.space_pressure.store(false, Ordering::Relaxed);
                    return Err(WalError::Crashed);
                }
                inner.rt.sleep(d);
            }
            Err(StorageError::FsyncFailed(e)) => return Err(WalError::Poisoned(e)),
            Err(StorageError::Permanent(e)) => return Err(WalError::Io(e)),
        }
    }
}

/// Syncs every segment a batch touched. **Never retries a failed
/// fsync**: after the failure the page cache is unknowable (dirty
/// pages may already be dropped), so a "successful" retry could
/// acknowledge data that is gone — the fsyncgate failure mode. The
/// planted `retry_after_fsync_fail` bug exists precisely to prove the
/// test battery catches anyone reintroducing that retry.
fn fsync_batch(inner: &WalInner, segs: &[u64]) -> Result<(), WalError> {
    for &seg in segs {
        if let Err(e) = inner.storage.fsync(seg) {
            #[cfg(feature = "planted")]
            {
                if crate::planted::retry_after_fsync_fail_bug() && inner.storage.fsync(seg).is_ok()
                {
                    // BUG (planted): treating the retried fsync as
                    // success acknowledges records whose bytes the
                    // kernel already dropped — silent data loss the
                    // disk-fault battery must detect.
                    continue;
                }
            }
            return Err(WalError::Poisoned(e.to_string()));
        }
    }
    Ok(())
}

/// The group-commit writer: batches whatever accumulated since the
/// last flush, writes and syncs it through the VFS under the retry
/// policy, then advances `durable_lsn` and wakes every waiting session
/// in one shot. On every exit path it marks `writer_exited` and
/// notifies the durable event, so no waiter can outlive it blocked.
fn writer_loop(inner: &WalInner) {
    loop {
        let (chunks, nrec, last) = loop {
            let key = inner.work_ev.prepare();
            let mut st = inner.lock();
            if st.crashed || (st.pending.is_empty() && st.closing) {
                st.writer_busy = false;
                st.writer_exited = true;
                drop(st);
                inner.durable_ev.notify();
                return;
            }
            if !st.pending.is_empty() {
                let chunks = std::mem::take(&mut st.pending);
                let nrec = std::mem::replace(&mut st.pending_recs, 0);
                let last = st.last_enqueued;
                st.writer_busy = true;
                st.writing = chunks.iter().map(|(s, _)| *s).collect();
                break (chunks, nrec, last);
            }
            drop(st);
            inner.work_ev.wait(key);
        };

        let t0 = inner.rt.now();
        let mut written: Vec<(u64, u64)> = Vec::with_capacity(chunks.len());
        let io = (|| -> Result<(), WalError> {
            for (seg, bytes) in &chunks {
                append_with_retry(inner, *seg, bytes)?;
                written.push((*seg, bytes.len() as u64));
            }
            if inner.cfg.fsync {
                let segs: Vec<u64> = chunks.iter().map(|(s, _)| *s).collect();
                fsync_batch(inner, &segs)?;
            }
            Ok(())
        })();

        let flush_nanos = inner.rt.now().saturating_sub(t0).as_nanos() as u64;
        inner
            .stats
            .flush_nanos
            .fetch_add(flush_nanos, Ordering::Relaxed);

        let mut st = inner.lock();
        st.writing.clear();
        st.writer_busy = false;
        match io {
            Ok(()) => {
                for (seg, len) in written {
                    if let Some(m) = st.segments.get_mut(&seg) {
                        m.durable += len;
                    }
                }
                st.durable_lsn = last;
                inner.stats.flushes.fetch_add(1, Ordering::Relaxed);
                inner.stats.records.fetch_add(nrec, Ordering::Relaxed);
                inner.stats.batch_hist[batch_bucket(nrec)].fetch_add(1, Ordering::Relaxed);
                inner.stats.flush_hist[flush_bucket(flush_nanos)].fetch_add(1, Ordering::Relaxed);
                // Batch-boundary signature for schedule-space search:
                // which group-commit batch sizes this interleaving
                // produced (bucketed like the histogram).
                inner.rt.emit("wal_batch", batch_bucket(nrec) as u64);
                let active = st.active;
                collect_dead(&mut st, active, inner);
                drop(st);
                inner.durable_ev.notify();
            }
            Err(e) => {
                // A terminal disk fault is fail-stop: un-acked
                // sessions must see the precise error, never a false
                // ack, and the engine's commit gate flips to degraded.
                inner.set_health(match &e {
                    WalError::Poisoned(_) => WalHealth::Poisoned,
                    WalError::NoSpace => WalHealth::NoSpace,
                    WalError::Crashed => WalHealth::Crashed,
                    _ => WalHealth::Failed,
                });
                st.crashed = true;
                st.fail = Some(e);
                st.pending.clear();
                st.pending_recs = 0;
                st.writer_exited = true;
                drop(st);
                inner.durable_ev.notify();
                return;
            }
        }
    }
}
