//! On-disk record format: length-prefixed, CRC-guarded, LSN-stamped.
//!
//! Every record is laid out as
//!
//! ```text
//! [len: u32 LE]  — payload length in bytes
//! [crc: u32 LE]  — CRC-32 (IEEE) of the payload
//! payload:
//!   [kind: u8]        — 1 = commit, 2 = abort
//!   [lsn:  u64 LE]    — strictly increasing across the whole log
//!   [txn:  u32 LE]
//!   commit only:
//!     [n_shards: u32 LE] then n_shards × [shard: u32 LE]
//!     [n_writes: u32 LE] then n_writes × [entity: u32 LE][value: i64 LE]
//! ```
//!
//! The length prefix bounds the read, the CRC convicts torn or
//! bit-rotted payloads, and the embedded LSN lets recovery reject
//! stale bytes that a recycled offset could otherwise resurrect: a
//! valid log is a strictly-LSN-increasing sequence of records, and the
//! scan stops (and truncates) at the first violation.

use deltx_model::{EntityId, TxnId};
use deltx_storage::Value;

/// Largest payload the decoder will accept. A record is one
/// transaction's writeset; anything past this is corruption, not data.
const MAX_PAYLOAD: usize = 1 << 24;

const KIND_COMMIT: u8 = 1;
const KIND_ABORT: u8 = 2;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A committed transaction: its full writeset (entity, value)
    /// pairs plus the shard span it touched, enough to rebuild the
    /// store values and the conflict-graph residency on replay.
    Commit {
        /// Log sequence number.
        lsn: u64,
        /// The committed transaction.
        txn: TxnId,
        /// Entities written with the installed values, in install order.
        writes: Vec<(EntityId, Value)>,
        /// Shard indices the transaction touched (reads included).
        shards: Vec<u32>,
    },
    /// An aborted transaction (informational: absence from the log
    /// already means aborted; the record makes tail diagnosis easier).
    Abort {
        /// Log sequence number.
        lsn: u64,
        /// The aborted transaction.
        txn: TxnId,
    },
}

impl WalRecord {
    /// The record's log sequence number.
    pub fn lsn(&self) -> u64 {
        match self {
            WalRecord::Commit { lsn, .. } | WalRecord::Abort { lsn, .. } => *lsn,
        }
    }
}

/// Why a scan stopped before the end of the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a complete record: a torn tail.
    Torn,
    /// The CRC did not match the payload.
    BadCrc,
    /// The length prefix or payload structure is impossible.
    Corrupt,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8], off: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(b.get(*off..*off + 4)?.try_into().ok()?);
    *off += 4;
    Some(v)
}

fn get_u64(b: &[u8], off: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(b.get(*off..*off + 8)?.try_into().ok()?);
    *off += 8;
    Some(v)
}

fn get_i64(b: &[u8], off: &mut usize) -> Option<i64> {
    let v = i64::from_le_bytes(b.get(*off..*off + 8)?.try_into().ok()?);
    *off += 8;
    Some(v)
}

/// Encodes a commit record (header + payload) into a fresh buffer.
pub fn encode_commit(
    lsn: u64,
    txn: TxnId,
    writes: &[(EntityId, Value)],
    shards: &[u32],
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(17 + 4 * shards.len() + 12 * writes.len() + 8);
    payload.push(KIND_COMMIT);
    put_u64(&mut payload, lsn);
    put_u32(&mut payload, txn.0);
    put_u32(&mut payload, shards.len() as u32);
    for &s in shards {
        put_u32(&mut payload, s);
    }
    put_u32(&mut payload, writes.len() as u32);
    for &(x, v) in writes {
        put_u32(&mut payload, x.0);
        payload.extend_from_slice(&v.to_le_bytes());
    }
    frame(payload)
}

/// Encodes an abort record.
pub fn encode_abort(lsn: u64, txn: TxnId) -> Vec<u8> {
    let mut payload = Vec::with_capacity(13);
    payload.push(KIND_ABORT);
    put_u64(&mut payload, lsn);
    put_u32(&mut payload, txn.0);
    frame(payload)
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes the record at the start of `buf`.
///
/// Returns `Ok(None)` on an empty buffer (clean end of segment),
/// `Ok(Some((record, consumed)))` on success, and a [`DecodeError`]
/// when the bytes cannot be a complete, intact record — the caller
/// truncates the log there.
pub fn decode(buf: &[u8]) -> Result<Option<(WalRecord, usize)>, DecodeError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < 8 {
        return Err(DecodeError::Torn);
    }
    let mut off = 0;
    let len = get_u32(buf, &mut off).expect("checked") as usize;
    let crc = get_u32(buf, &mut off).expect("checked");
    if len == 0 || len > MAX_PAYLOAD {
        return Err(DecodeError::Corrupt);
    }
    let Some(payload) = buf.get(8..8 + len) else {
        return Err(DecodeError::Torn);
    };
    if crc32(payload) != crc {
        return Err(DecodeError::BadCrc);
    }
    let rec = decode_payload(payload).ok_or(DecodeError::Corrupt)?;
    Ok(Some((rec, 8 + len)))
}

fn decode_payload(p: &[u8]) -> Option<WalRecord> {
    let kind = *p.first()?;
    let mut off = 1;
    let lsn = get_u64(p, &mut off)?;
    let txn = TxnId(get_u32(p, &mut off)?);
    match kind {
        KIND_ABORT => (off == p.len()).then_some(WalRecord::Abort { lsn, txn }),
        KIND_COMMIT => {
            let n_shards = get_u32(p, &mut off)? as usize;
            if n_shards > p.len() {
                return None;
            }
            let mut shards = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                shards.push(get_u32(p, &mut off)?);
            }
            let n_writes = get_u32(p, &mut off)? as usize;
            if n_writes > p.len() {
                return None;
            }
            let mut writes = Vec::with_capacity(n_writes);
            for _ in 0..n_writes {
                let x = EntityId(get_u32(p, &mut off)?);
                let v = get_i64(p, &mut off)?;
                writes.push((x, v));
            }
            (off == p.len()).then_some(WalRecord::Commit {
                lsn,
                txn,
                writes,
                shards,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn commit_roundtrip() {
        let writes = vec![(EntityId(3), -7i64), (EntityId(11), 42)];
        let bytes = encode_commit(9, TxnId(5), &writes, &[0, 2]);
        let (rec, consumed) = decode(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(
            rec,
            WalRecord::Commit {
                lsn: 9,
                txn: TxnId(5),
                writes,
                shards: vec![0, 2],
            }
        );
    }

    #[test]
    fn abort_roundtrip_and_sequence() {
        let mut buf = encode_abort(1, TxnId(8));
        buf.extend(encode_commit(2, TxnId(9), &[(EntityId(0), 1)], &[0]));
        let (first, n) = decode(&buf).unwrap().unwrap();
        assert_eq!(
            first,
            WalRecord::Abort {
                lsn: 1,
                txn: TxnId(8)
            }
        );
        let (second, m) = decode(&buf[n..]).unwrap().unwrap();
        assert_eq!(second.lsn(), 2);
        assert_eq!(n + m, buf.len());
        assert_eq!(decode(&buf[n + m..]).unwrap(), None, "clean end");
    }

    #[test]
    fn torn_and_corrupt_bytes_are_rejected() {
        let bytes = encode_commit(4, TxnId(1), &[(EntityId(2), 5)], &[1]);
        // Any strict prefix is torn.
        for cut in 1..bytes.len() {
            let e = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(e, DecodeError::Torn | DecodeError::BadCrc),
                "prefix of {cut} bytes must not decode: {e:?}"
            );
        }
        // A flipped payload bit fails the CRC.
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert_eq!(decode(&flipped).unwrap_err(), DecodeError::BadCrc);
        // An absurd length prefix is corrupt, not a huge read.
        let mut huge = bytes;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&huge).unwrap_err(), DecodeError::Corrupt);
    }
}
