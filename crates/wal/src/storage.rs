//! The WAL's storage seam: every byte the log reads or writes goes
//! through [`WalStorage`], a small VFS over named segments.
//!
//! Production uses [`FsStorage`] — plain `std::fs` files under the
//! configured directory. Tests and the simulation testkit wrap it in
//! [`FaultyStorage`], which injects a deterministic fault schedule
//! ([`FaultSpec`]): transient append errors, a permanent `fsync`
//! failure that *drops the un-synced suffix* (the way a kernel
//! discards dirty pages after `EIO` — the "fsyncgate" semantics), a
//! byte-capacity `ENOSPC` device, and sector-granular corruption of
//! sealed segments. Because the schedule is counted in storage
//! operations and the simulator serializes all tasks, a `(spec, seed)`
//! coordinate replays the exact same fault × interleaving every time.
//!
//! Errors are pre-classified by [`StorageError`] so the log's policy
//! layer (retry / poison / degrade) never has to guess what an
//! `io::Error` meant.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// A classified storage failure. The taxonomy is the policy contract:
/// the WAL retries `Transient`, fail-stops on `FsyncFailed` (never
/// retry a failed fsync — the page cache state is unknowable), and
/// escalates GC pressure on `NoSpace` before refusing writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// A retry may succeed (interrupted syscall, momentary contention).
    Transient(String),
    /// `fsync` failed. Dirty pages may have been silently dropped;
    /// nothing written since the last successful sync can be trusted.
    FsyncFailed(String),
    /// The device is full. `written` bytes of the append landed before
    /// the refusal (0 for an all-or-nothing backend).
    NoSpace {
        /// Bytes of the refused append that reached the device.
        written: u64,
    },
    /// A permanent, unclassifiable failure.
    Permanent(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Transient(e) => write!(f, "transient i/o error: {e}"),
            StorageError::FsyncFailed(e) => write!(f, "fsync failed: {e}"),
            StorageError::NoSpace { written } => {
                write!(
                    f,
                    "device full (ENOSPC, {written} bytes of the append landed)"
                )
            }
            StorageError::Permanent(e) => write!(f, "permanent i/o error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// The VFS the log runs on: a flat namespace of numbered segments.
///
/// Implementations must be safe to call from the writer task and the
/// recovery scan concurrently (interior mutability where needed).
pub trait WalStorage: Send + Sync + std::fmt::Debug {
    /// Creates the backing namespace (directory) if absent.
    fn init(&self) -> StorageResult<()>;

    /// Segment ids present, ascending.
    fn list(&self) -> StorageResult<Vec<u64>>;

    /// Opens a segment and returns its full contents (recovery-time
    /// only; the hot path never reads).
    fn open(&self, seg: u64) -> StorageResult<Vec<u8>>;

    /// Appends bytes to a segment, creating it on first append.
    fn append(&self, seg: u64, bytes: &[u8]) -> StorageResult<()>;

    /// Durably syncs a segment's appended bytes to the device.
    fn fsync(&self, seg: u64) -> StorageResult<()>;

    /// Truncates a segment to `len` bytes and syncs the cut (recovery
    /// uses this to remove torn tails).
    fn truncate(&self, seg: u64, len: u64) -> StorageResult<()>;

    /// Marks a segment sealed: no more appends will ever target it.
    /// Advisory — [`FsStorage`] keeps no per-segment state.
    fn seal(&self, seg: u64) -> StorageResult<()>;

    /// Removes a segment.
    fn unlink(&self, seg: u64) -> StorageResult<()>;

    /// Moves a corrupt sealed segment aside (out of the log namespace,
    /// kept for forensics) instead of deleting it.
    fn quarantine(&self, seg: u64) -> StorageResult<()>;

    /// Size of a segment in bytes (0 when absent).
    fn size(&self, seg: u64) -> StorageResult<u64>;
}

fn classify(e: std::io::Error) -> StorageError {
    // ENOSPC is raw errno 28 on every unix the workspace targets;
    // `ErrorKind::StorageFull` is not yet stable on the pinned
    // toolchain so match the raw code.
    if e.raw_os_error() == Some(28) {
        return StorageError::NoSpace { written: 0 };
    }
    match e.kind() {
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock => {
            StorageError::Transient(e.to_string())
        }
        _ => StorageError::Permanent(e.to_string()),
    }
}

/// The production backend: one `{id:08}.wal` file per segment under a
/// directory, written with `std::fs`.
#[derive(Debug, Clone)]
pub struct FsStorage {
    dir: PathBuf,
}

impl FsStorage {
    /// A filesystem backend rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FsStorage { dir: dir.into() }
    }

    /// Path of a segment file.
    pub fn segment_path(&self, seg: u64) -> PathBuf {
        segment_file(&self.dir, seg)
    }
}

/// Segment file naming, shared with the quarantine rename.
pub(crate) fn segment_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:08}.wal"))
}

impl WalStorage for FsStorage {
    fn init(&self) -> StorageResult<()> {
        std::fs::create_dir_all(&self.dir).map_err(classify)
    }

    fn list(&self) -> StorageResult<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(classify)? {
            let entry = entry.map_err(classify)?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".wal") {
                if let Ok(id) = stem.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn open(&self, seg: u64) -> StorageResult<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(self.segment_path(seg))
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(classify)?;
        Ok(bytes)
    }

    fn append(&self, seg: u64, bytes: &[u8]) -> StorageResult<()> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.segment_path(seg))
            .and_then(|mut f| f.write_all(bytes))
            .map_err(classify)
    }

    fn fsync(&self, seg: u64) -> StorageResult<()> {
        // Opening a fresh handle and syncing it flushes the *file's*
        // dirty pages — fsync is per inode, not per descriptor.
        File::open(self.segment_path(seg))
            .and_then(|f| f.sync_data())
            .map_err(|e| StorageError::FsyncFailed(e.to_string()))
    }

    fn truncate(&self, seg: u64, len: u64) -> StorageResult<()> {
        let f = OpenOptions::new()
            .write(true)
            .open(self.segment_path(seg))
            .map_err(classify)?;
        f.set_len(len).map_err(classify)?;
        f.sync_data()
            .map_err(|e| StorageError::FsyncFailed(e.to_string()))
    }

    fn seal(&self, _seg: u64) -> StorageResult<()> {
        Ok(())
    }

    fn unlink(&self, seg: u64) -> StorageResult<()> {
        std::fs::remove_file(self.segment_path(seg)).map_err(classify)
    }

    fn quarantine(&self, seg: u64) -> StorageResult<()> {
        let from = self.segment_path(seg);
        let to = self.dir.join(format!("{seg:08}.quarantine"));
        std::fs::rename(from, to).map_err(classify)
    }

    fn size(&self, seg: u64) -> StorageResult<u64> {
        match std::fs::metadata(self.segment_path(seg)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(classify(e)),
        }
    }
}

/// Sector size the corruption injector flips bytes at.
pub const SECTOR_BYTES: usize = 512;

/// A deterministic fault schedule, counted in storage operations.
/// `None`/`0` fields inject nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Appends `[at, at + burst)` (0-based, counted across all
    /// segments) fail with [`StorageError::Transient`] and write
    /// nothing; bounded retry must absorb them.
    pub transient_append_at: Option<(u64, u32)>,
    /// The `at`-th fsync (0-based) fails with
    /// [`StorageError::FsyncFailed`] **and drops the segment's
    /// un-synced suffix** — modeling a kernel that discards dirty
    /// pages on `EIO`, so a later fsync "succeeds" with the data gone.
    /// This is what makes retry-after-fsync-fail observable as silent
    /// loss.
    pub fsync_fail_at: Option<u64>,
    /// Device capacity in bytes; an append that would exceed it fails
    /// with [`StorageError::NoSpace`] and writes nothing. Unlinking
    /// segments frees their bytes, so GC pressure can rescue writes.
    pub capacity: Option<u64>,
    /// Reads of this segment fail with [`StorageError::Permanent`] —
    /// an unreadable sealed segment for the recovery scrub to refuse
    /// or quarantine.
    pub open_fail_seg: Option<u64>,
}

#[derive(Debug, Default)]
struct FaultyState {
    appends: u64,
    fsyncs: u64,
    /// Bytes known synced per segment; an injected fsync failure cuts
    /// the inner file back to this.
    synced: HashMap<u64, u64>,
    sealed: Vec<u64>,
}

/// A [`WalStorage`] wrapper that injects the [`FaultSpec`] schedule
/// deterministically. Appends write through to the inner backend (so
/// `fsync: false` configurations still persist), but the injected
/// fsync failure *removes* the un-synced suffix from the inner image —
/// exactly the disk a post-`EIO` crash would leave.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: Arc<dyn WalStorage>,
    spec: FaultSpec,
    st: Mutex<FaultyState>,
}

impl FaultyStorage {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: Arc<dyn WalStorage>, spec: FaultSpec) -> Self {
        FaultyStorage {
            inner,
            spec,
            st: Mutex::new(FaultyState::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FaultyState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Total bytes currently occupied on the inner device.
    fn used(&self) -> StorageResult<u64> {
        let mut total = 0;
        for id in self.inner.list()? {
            total += self.inner.size(id)?;
        }
        Ok(total)
    }

    /// Appends observed so far (for schedule calibration in tests).
    pub fn append_ops(&self) -> u64 {
        self.lock().appends
    }

    /// Fsyncs observed so far.
    pub fn fsync_ops(&self) -> u64 {
        self.lock().fsyncs
    }

    /// Segments the log has sealed, in seal order.
    pub fn sealed_segments(&self) -> Vec<u64> {
        self.lock().sealed.clone()
    }

    /// Flips every byte of one [`SECTOR_BYTES`]-sized sector of a
    /// segment — bit rot for the recovery scrub to find. The sector
    /// index is clamped to the segment's last sector; absent or empty
    /// segments are left untouched and `false` is returned.
    pub fn corrupt_sector(&self, seg: u64, sector: u32) -> StorageResult<bool> {
        let mut bytes = match self.inner.open(seg) {
            Ok(b) if !b.is_empty() => b,
            _ => return Ok(false),
        };
        let sectors = bytes.len().div_ceil(SECTOR_BYTES);
        let s = (sector as usize).min(sectors - 1);
        let start = s * SECTOR_BYTES;
        let end = (start + SECTOR_BYTES).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b = !*b;
        }
        self.inner.truncate(seg, 0)?;
        self.inner.append(seg, &bytes)?;
        let mut st = self.lock();
        st.synced.insert(seg, bytes.len() as u64);
        Ok(true)
    }
}

impl WalStorage for FaultyStorage {
    fn init(&self) -> StorageResult<()> {
        self.inner.init()
    }

    fn list(&self) -> StorageResult<Vec<u64>> {
        self.inner.list()
    }

    fn open(&self, seg: u64) -> StorageResult<Vec<u8>> {
        if self.spec.open_fail_seg == Some(seg) {
            return Err(StorageError::Permanent(format!(
                "injected open failure on segment {seg}"
            )));
        }
        self.inner.open(seg)
    }

    fn append(&self, seg: u64, bytes: &[u8]) -> StorageResult<()> {
        {
            let mut st = self.lock();
            let op = st.appends;
            st.appends += 1;
            if let Some((at, burst)) = self.spec.transient_append_at {
                if op >= at && op < at + u64::from(burst) {
                    return Err(StorageError::Transient(format!(
                        "injected transient append failure (op {op})"
                    )));
                }
            }
        }
        if let Some(cap) = self.spec.capacity {
            if self.used()? + bytes.len() as u64 > cap {
                return Err(StorageError::NoSpace { written: 0 });
            }
        }
        self.inner.append(seg, bytes)
    }

    fn fsync(&self, seg: u64) -> StorageResult<()> {
        let fail = {
            let mut st = self.lock();
            let op = st.fsyncs;
            st.fsyncs += 1;
            self.spec.fsync_fail_at == Some(op)
        };
        if fail {
            // Drop the dirty suffix like a kernel discarding pages on
            // EIO: the next fsync will "succeed" with the data gone.
            let synced = *self.lock().synced.get(&seg).unwrap_or(&0);
            self.inner.truncate(seg, synced)?;
            return Err(StorageError::FsyncFailed(
                "injected fsync failure (dirty pages dropped)".into(),
            ));
        }
        self.inner.fsync(seg)?;
        let len = self.inner.size(seg)?;
        self.lock().synced.insert(seg, len);
        Ok(())
    }

    fn truncate(&self, seg: u64, len: u64) -> StorageResult<()> {
        self.inner.truncate(seg, len)?;
        self.lock().synced.insert(seg, len);
        Ok(())
    }

    fn seal(&self, seg: u64) -> StorageResult<()> {
        self.lock().sealed.push(seg);
        self.inner.seal(seg)
    }

    fn unlink(&self, seg: u64) -> StorageResult<()> {
        self.inner.unlink(seg)?;
        self.lock().synced.remove(&seg);
        Ok(())
    }

    fn quarantine(&self, seg: u64) -> StorageResult<()> {
        self.inner.quarantine(seg)?;
        self.lock().synced.remove(&seg);
        Ok(())
    }

    fn size(&self, seg: u64) -> StorageResult<u64> {
        self.inner.size(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "deltx-storage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fs_roundtrip_list_append_open_unlink() {
        let dir = tmp("fs");
        let s = FsStorage::new(&dir);
        s.init().unwrap();
        assert_eq!(s.list().unwrap(), Vec::<u64>::new());
        s.append(3, b"abc").unwrap();
        s.append(3, b"def").unwrap();
        s.append(7, b"x").unwrap();
        assert_eq!(s.list().unwrap(), vec![3, 7]);
        assert_eq!(s.open(3).unwrap(), b"abcdef");
        assert_eq!(s.size(3).unwrap(), 6);
        s.truncate(3, 4).unwrap();
        assert_eq!(s.open(3).unwrap(), b"abcd");
        s.unlink(7).unwrap();
        assert_eq!(s.size(7).unwrap(), 0);
        s.quarantine(3).unwrap();
        assert_eq!(s.list().unwrap(), Vec::<u64>::new());
        assert!(dir.join("00000003.quarantine").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_transient_burst_then_success() {
        let dir = tmp("transient");
        let fs = Arc::new(FsStorage::new(&dir));
        fs.init().unwrap();
        let f = FaultyStorage::new(
            fs,
            FaultSpec {
                transient_append_at: Some((1, 2)),
                ..FaultSpec::default()
            },
        );
        f.append(0, b"ok").unwrap();
        assert!(matches!(
            f.append(0, b"no"),
            Err(StorageError::Transient(_))
        ));
        assert!(matches!(
            f.append(0, b"no"),
            Err(StorageError::Transient(_))
        ));
        f.append(0, b"yes").unwrap();
        assert_eq!(f.open(0).unwrap(), b"okyes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_fsync_failure_drops_dirty_suffix() {
        let dir = tmp("fsyncgate");
        let fs = Arc::new(FsStorage::new(&dir));
        fs.init().unwrap();
        let f = FaultyStorage::new(
            fs,
            FaultSpec {
                fsync_fail_at: Some(1),
                ..FaultSpec::default()
            },
        );
        f.append(0, b"durable").unwrap();
        f.fsync(0).unwrap(); // op 0: succeeds, marks 7 bytes synced
        f.append(0, b"lost").unwrap();
        assert!(matches!(f.fsync(0), Err(StorageError::FsyncFailed(_))));
        // The dirty suffix is gone and a retried fsync "succeeds".
        assert_eq!(f.open(0).unwrap(), b"durable");
        f.fsync(0).unwrap();
        assert_eq!(f.open(0).unwrap(), b"durable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_capacity_enospc_frees_on_unlink() {
        let dir = tmp("enospc");
        let fs = Arc::new(FsStorage::new(&dir));
        fs.init().unwrap();
        let f = FaultyStorage::new(
            fs,
            FaultSpec {
                capacity: Some(8),
                ..FaultSpec::default()
            },
        );
        f.append(0, b"12345").unwrap();
        assert!(matches!(
            f.append(1, b"6789X"),
            Err(StorageError::NoSpace { .. })
        ));
        f.unlink(0).unwrap();
        f.append(1, b"6789X").unwrap();
        assert_eq!(f.open(1).unwrap(), b"6789X");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sector_flips_bytes_in_place() {
        let dir = tmp("rot");
        let fs = Arc::new(FsStorage::new(&dir));
        fs.init().unwrap();
        let f = FaultyStorage::new(fs, FaultSpec::default());
        let data = vec![0xAAu8; SECTOR_BYTES + 10];
        f.append(0, &data).unwrap();
        assert!(f.corrupt_sector(0, 1).unwrap());
        let got = f.open(0).unwrap();
        assert_eq!(&got[..SECTOR_BYTES], &data[..SECTOR_BYTES]);
        assert!(got[SECTOR_BYTES..].iter().all(|&b| b == 0x55));
        // Absent segment: nothing to corrupt.
        assert!(!f.corrupt_sector(9, 0).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
