//! Proves the disk-fault battery has teeth: with the planted
//! "retry after a failed fsync" bug switched on, the WAL acknowledges
//! a commit whose bytes the device already dropped — and the battery's
//! reopen check catches the silent loss. Runs in its own test binary
//! (own process) because the planted flag is global.

#![cfg(feature = "planted")]

use deltx_model::{EntityId, TxnId};
use deltx_wal::{
    DurabilityConfig, FaultSpec, FaultyStorage, FsStorage, Wal, WalHealth, WalStorage,
};
use std::path::PathBuf;
use std::sync::Arc;

#[test]
fn retry_after_fsync_fail_acks_lost_data_and_reopen_catches_it() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("deltx-wal-planted-fsync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    deltx_wal::planted::set_retry_after_fsync_fail_bug(true);
    let mut cfg = DurabilityConfig::new(&dir);
    let fs: Arc<dyn WalStorage> = Arc::new(FsStorage::new(&dir));
    cfg.storage = Some(Arc::new(FaultyStorage::new(
        fs,
        FaultSpec {
            // The first fsync succeeds; the second fails AND drops the
            // un-synced suffix (the fsyncgate kernel semantics), so a
            // retried fsync "succeeds" with the data gone.
            fsync_fail_at: Some(1),
            ..FaultSpec::default()
        },
    )));
    let (wal, _, _) = Wal::open(cfg).unwrap();

    let lsn1 = wal
        .submit_commit(TxnId(1), &[(EntityId(0), 10)], &[0])
        .unwrap();
    wal.wait_durable(lsn1).unwrap();

    // With the bug planted, the poisoning policy is bypassed: the
    // retried fsync reports success and the session is ACKED.
    let lsn2 = wal
        .submit_commit(TxnId(2), &[(EntityId(0), 20)], &[0])
        .unwrap();
    assert_eq!(
        wal.wait_durable(lsn2),
        Ok(()),
        "the planted bug must ack the doomed commit (else it is not the bug)"
    );
    assert_eq!(wal.health(), WalHealth::Ok, "the bug hides the failure");
    drop(wal);
    deltx_wal::planted::set_retry_after_fsync_fail_bug(false);

    // The battery's reopen oracle: an ACKED commit must be on disk.
    // With the bug it is not — this is the silent loss the fail-stop
    // poisoning policy exists to prevent.
    let (_wal, commits, _) = Wal::open(DurabilityConfig::new(&dir)).unwrap();
    let replayed: Vec<u32> = commits.iter().map(|c| c.txn.0).collect();
    assert_eq!(
        replayed,
        vec![1],
        "reopen detects the loss: txn 2 was acked but never made durable"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
