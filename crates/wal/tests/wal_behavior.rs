//! Behavior tests for the WAL in isolation: group commit ordering,
//! recovery truncation, GC-driven segment removal, and every crash
//! point's on-disk image.

use deltx_model::{EntityId, TxnId};
use deltx_wal::{
    CrashPoint, DurabilityConfig, FaultSpec, FaultyStorage, FsStorage, RecoverPolicy, Wal,
    WalError, WalHealth, WalStorage, ALL_CRASH_POINTS,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Fresh per-test directory under the system temp dir (no tempfile
/// crate in the offline workspace); removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "deltx-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TestDir(dir)
    }

    fn cfg(&self) -> DurabilityConfig {
        DurabilityConfig::new(&self.0)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn commit_one(wal: &Wal, txn: u32, writes: &[(u32, i64)]) -> Result<u64, WalError> {
    let ws: Vec<(EntityId, i64)> = writes.iter().map(|&(x, v)| (EntityId(x), v)).collect();
    let lsn = wal.submit_commit(TxnId(txn), &ws, &[0])?;
    wal.wait_durable(lsn)?;
    Ok(lsn)
}

#[test]
fn commits_survive_reopen_in_lsn_order() {
    let dir = TestDir::new("reopen");
    {
        let (wal, commits, scan) = Wal::open(dir.cfg()).unwrap();
        assert!(commits.is_empty());
        assert_eq!(scan.max_lsn, 0);
        commit_one(&wal, 1, &[(0, 10)]).unwrap();
        commit_one(&wal, 2, &[(0, 20), (1, 5)]).unwrap();
        wal.submit_abort(TxnId(3));
        commit_one(&wal, 4, &[(1, 7)]).unwrap();
    }
    let (_wal, commits, scan) = Wal::open(dir.cfg()).unwrap();
    assert_eq!(
        commits.iter().map(|c| c.txn).collect::<Vec<_>>(),
        vec![TxnId(1), TxnId(2), TxnId(4)],
        "commits replay in LSN order, aborts are skipped"
    );
    assert!(commits.windows(2).all(|w| w[0].lsn < w[1].lsn));
    assert_eq!(commits[1].writes, vec![(EntityId(0), 20), (EntityId(1), 5)]);
    assert!(!scan.torn_tail);
}

#[test]
fn gc_deletion_truncates_dead_segments() {
    let dir = TestDir::new("truncate");
    let mut cfg = dir.cfg();
    cfg.segment_bytes = 128; // a couple of records per segment
    cfg.fsync = false;
    let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
    let mut txns = Vec::new();
    for i in 0..40u32 {
        commit_one(&wal, i, &[(i % 4, i as i64)]).unwrap();
        txns.push(TxnId(i));
    }
    let before = wal.stats();
    assert!(before.segments_created > 0, "log rolled segments");
    // Delete everything but the last few writers (the "current" ones a
    // real sweep would keep): sealed all-dead segments must vanish.
    wal.note_deleted(&txns[..36]);
    let after = wal.stats();
    assert!(
        after.segments_truncated > 0,
        "GC deletion must remove dead segments"
    );
    assert!(after.segments_live < before.segments_live);
    drop(wal);
    // Recovery only sees the survivors.
    let (_wal, commits, _) = Wal::open(cfg).unwrap();
    assert!(commits.len() < 40, "truncated commits are gone");
    for live in 36..40u32 {
        assert!(
            commits.iter().any(|c| c.txn == TxnId(live)),
            "undeleted txn {live} must survive truncation"
        );
    }
}

#[test]
fn group_commit_batches_concurrent_sessions() {
    let dir = TestDir::new("batch");
    let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let wal = &wal;
            s.spawn(move || {
                for i in 0..20u32 {
                    commit_one(wal, t * 1000 + i, &[(t, i as i64)]).unwrap();
                }
            });
        }
    });
    let stats = wal.stats();
    assert_eq!(stats.records, 160);
    assert!(stats.flushes <= stats.records);
    assert_eq!(stats.batch_hist.iter().sum::<u64>(), stats.flushes);
    assert_eq!(stats.durable_lsn, 160);
}

#[test]
fn crash_points_leave_the_advertised_disk_image() {
    for cp in ALL_CRASH_POINTS {
        let dir = TestDir::new(&format!("crash-{cp:?}"));
        let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
        commit_one(&wal, 1, &[(0, 10)]).unwrap();
        commit_one(&wal, 2, &[(0, 20)]).unwrap();
        wal.arm_crash(cp);
        let err = commit_one(&wal, 3, &[(0, 30)]).unwrap_err();
        assert_eq!(err, WalError::Crashed);
        assert!(wal.is_crashed());
        // Everything after the crash fails too.
        assert_eq!(
            wal.submit_commit(TxnId(4), &[(EntityId(0), 40)], &[0]),
            Err(WalError::Crashed)
        );
        drop(wal);

        let (_wal, commits, scan) = Wal::open(dir.cfg()).unwrap();
        let replayed: Vec<u32> = commits.iter().map(|c| c.txn.0).collect();
        match cp {
            CrashPoint::BeforeAppend | CrashPoint::AfterAppendBeforeFlush => {
                assert_eq!(replayed, vec![1, 2], "{cp:?}: lost record absent");
                assert!(!scan.torn_tail, "{cp:?}: clean tail");
            }
            CrashPoint::MidFlushTorn => {
                assert_eq!(replayed, vec![1, 2], "{cp:?}: torn record dropped");
                assert!(scan.torn_tail, "{cp:?}: tail was truncated");
                assert!(scan.bytes_discarded > 0);
            }
            CrashPoint::AfterFlushBeforeVisibility => {
                assert_eq!(replayed, vec![1, 2, 3], "{cp:?}: durable record replays");
                assert!(!scan.torn_tail);
            }
            CrashPoint::TornWriteAt(_) => {
                unreachable!("parameterized points are not in ALL_CRASH_POINTS")
            }
        }
    }
}

#[test]
fn torn_write_at_every_offset_recovers_the_valid_prefix() {
    // The record the crashed commit would append: lsn 3 (after two
    // clean commits), txn 3, one write, one shard — recomputed here so
    // the sweep can name every interesting cut offset exactly.
    let record = deltx_wal::encode_commit(3, TxnId(3), &[(EntityId(0), 30)], &[0]);
    let len = record.len() as u32;
    // Offsets crossing every structural boundary: nothing written,
    // inside the [len] prefix, inside the [crc], the exact header
    // boundary, one byte of payload, mid-payload, one byte short of
    // intact, and the full record.
    let offsets = [0, 1, 4, 7, 8, 9, len / 2, len - 1, len];
    for off in offsets {
        let dir = TestDir::new(&format!("torn-at-{off}"));
        let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
        commit_one(&wal, 1, &[(0, 10)]).unwrap();
        commit_one(&wal, 2, &[(0, 20)]).unwrap();
        wal.arm_crash(CrashPoint::TornWriteAt(off));
        let err = commit_one(&wal, 3, &[(0, 30)]).unwrap_err();
        assert_eq!(err, WalError::Crashed, "off {off}: client never acked");
        drop(wal);

        let (_wal, commits, scan) = Wal::open(dir.cfg()).unwrap();
        let replayed: Vec<u32> = commits.iter().map(|c| c.txn.0).collect();
        if off == len {
            // The full record made it to disk: exactly the
            // AfterFlushBeforeVisibility contract.
            assert_eq!(replayed, vec![1, 2, 3], "off {off}: intact record replays");
            assert!(!scan.torn_tail, "off {off}: nothing to cut");
        } else {
            assert_eq!(replayed, vec![1, 2], "off {off}: torn record dropped");
            if off == 0 {
                assert!(!scan.torn_tail, "off 0: nothing was written");
            } else {
                assert!(scan.torn_tail, "off {off}: tail truncated");
                assert_eq!(
                    scan.bytes_discarded,
                    u64::from(off),
                    "off {off}: exactly the torn bytes are cut"
                );
            }
        }
    }
}

#[test]
fn close_with_pending_submissions_flushes_and_acks_them() {
    // Shutdown ordering: submissions enqueued before close() are
    // drained by the writer's final pass, so their waiters are acked
    // Ok — close never strands an accepted record.
    let dir = TestDir::new("close-drain");
    let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
    let mut lsns = Vec::new();
    for i in 0..16u32 {
        lsns.push(
            wal.submit_commit(TxnId(i), &[(EntityId(0), i as i64)], &[0])
                .unwrap(),
        );
    }
    wal.close();
    for lsn in lsns {
        assert_eq!(wal.wait_durable(lsn), Ok(()), "drained records are acked");
    }
    drop(wal);
    let (_wal, commits, _) = Wal::open(dir.cfg()).unwrap();
    assert_eq!(commits.len(), 16, "every pre-close submission survived");
}

#[test]
fn waiters_for_uncovered_lsns_error_on_close_instead_of_hanging() {
    // Shutdown ordering, the other direction: a session blocked on an
    // LSN the writer will never flush must observe the writer's exit
    // as an error, not a hang.
    let dir = TestDir::new("close-waiter");
    let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
    commit_one(&wal, 1, &[(0, 1)]).unwrap();
    std::thread::scope(|s| {
        let wal = &wal;
        let waiter = s.spawn(move || wal.wait_durable(u64::MAX));
        // Give the waiter time to park before pulling the plug; the
        // assertion holds either way, the sleep just makes the race
        // interesting.
        std::thread::sleep(std::time::Duration::from_millis(10));
        wal.close();
        assert_eq!(
            waiter.join().unwrap(),
            Err(WalError::Closed),
            "the waiter must be woken with an error when the writer exits"
        );
    });
}

#[test]
fn midlog_corruption_refuses_strict_and_quarantines_on_request() {
    // Corruption in a sealed mid-log segment is not a crash artifact
    // (valid records survive *after* it), so recovery must never
    // silently truncate: Strict refuses loudly, Quarantine moves the
    // segment aside and reports the precise lost LSN range.
    let dir = TestDir::new("midlog");
    let mut cfg = dir.cfg();
    cfg.segment_bytes = 64;
    {
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..12u32 {
            commit_one(&wal, i, &[(0, i as i64)]).unwrap();
        }
    }
    // Corrupt the middle segment by flipping a byte in its interior.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 3, "need several segments, got {}", segs.len());
    let victim = &segs[1];
    let victim_id: u64 = victim
        .file_stem()
        .unwrap()
        .to_string_lossy()
        .parse()
        .unwrap();
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(victim, &bytes).unwrap();

    // Strict (the default): refuse, naming the segment and the escape
    // hatch; nothing on disk is modified.
    let err = match Wal::open(cfg.clone()) {
        Err(e) => e,
        Ok(_) => panic!("strict recovery must refuse mid-log corruption"),
    };
    let msg = err.to_string();
    assert!(msg.contains("Quarantine"), "error names the opt-in: {msg}");
    assert!(
        msg.contains(&format!("{victim_id:08}")),
        "error names the damaged segment: {msg}"
    );
    assert!(victim.exists(), "strict refusal must not touch the disk");

    // Quarantine: open with the survivors and an accurate report.
    let mut qcfg = cfg.clone();
    qcfg.recover = RecoverPolicy::Quarantine;
    let (_wal, commits, scan) = Wal::open(qcfg).unwrap();
    assert_eq!(scan.quarantined.len(), 1, "exactly one segment damaged");
    let q = &scan.quarantined[0];
    assert_eq!(q.segment, victim_id);
    assert!(
        q.resume_at > q.lost_after + 1,
        "the gap holds at least one lost LSN: {q:?}"
    );
    assert!(!commits.is_empty());
    assert!(commits.windows(2).all(|w| w[0].lsn < w[1].lsn));
    assert!(
        commits
            .iter()
            .all(|c| c.lsn <= q.lost_after || c.lsn >= q.resume_at),
        "no replayed commit may sit inside the reported gap"
    );
    assert!(
        dir.0.join(format!("{victim_id:08}.quarantine")).exists(),
        "the damaged segment is kept for forensics, not deleted"
    );
}

#[test]
fn transient_append_errors_are_absorbed_by_bounded_retry() {
    let dir = TestDir::new("transient");
    let mut cfg = dir.cfg();
    let fs: Arc<dyn WalStorage> = Arc::new(FsStorage::new(&dir.0));
    cfg.storage = Some(Arc::new(FaultyStorage::new(
        fs,
        FaultSpec {
            transient_append_at: Some((1, 2)),
            ..FaultSpec::default()
        },
    )));
    let (wal, _, _) = Wal::open(cfg).unwrap();
    for i in 0..4u32 {
        commit_one(&wal, i, &[(0, i as i64)]).unwrap();
    }
    assert_eq!(wal.health(), WalHealth::Ok, "retry absorbed the fault");
    let stats = wal.stats();
    assert_eq!(stats.append_retries, 2, "both injected errors retried");
    drop(wal);
    let (_wal, commits, _) = Wal::open(dir.cfg()).unwrap();
    assert_eq!(commits.len(), 4, "every acked commit survived");
}

#[test]
fn fsync_failure_poisons_the_log_fail_stop() {
    let dir = TestDir::new("poison");
    let mut cfg = dir.cfg();
    let fs: Arc<dyn WalStorage> = Arc::new(FsStorage::new(&dir.0));
    cfg.storage = Some(Arc::new(FaultyStorage::new(
        fs,
        FaultSpec {
            fsync_fail_at: Some(1),
            ..FaultSpec::default()
        },
    )));
    let (wal, _, _) = Wal::open(cfg).unwrap();
    commit_one(&wal, 1, &[(0, 10)]).unwrap(); // fsync 0 succeeds
    let err = commit_one(&wal, 2, &[(0, 20)]).unwrap_err();
    assert!(
        matches!(err, WalError::Poisoned(_)),
        "the waiter sees the poisoning, got {err:?}"
    );
    assert_eq!(wal.health(), WalHealth::Poisoned);
    // Fail-stop: nothing is accepted after the poisoning, and the
    // error keeps naming the root cause.
    assert!(matches!(
        wal.submit_commit(TxnId(3), &[(EntityId(0), 30)], &[0]),
        Err(WalError::Poisoned(_))
    ));
    // Already-durable records still report success.
    assert_eq!(wal.wait_durable(1), Ok(()));
    drop(wal);
    // The un-synced record died with the kernel's dirty pages; the
    // synced prefix recovers cleanly.
    let (_wal, commits, _) = Wal::open(dir.cfg()).unwrap();
    let replayed: Vec<u32> = commits.iter().map(|c| c.txn.0).collect();
    assert_eq!(replayed, vec![1], "only the synced commit survives");
}

/// Size of the one-write commit record every sizing test below uses.
fn one_write_record_len() -> u64 {
    deltx_wal::encode_commit(1, TxnId(0), &[(EntityId(0), 0)], &[0]).len() as u64
}

#[test]
fn enospc_parks_the_writer_until_gc_rescue_frees_a_segment() {
    // Graceful ENOSPC degradation: the full device parks the append
    // under backoff and raises space pressure; deleting a superseded
    // transaction retires its (sealed, barrier-durable) segment, the
    // unlink frees the bytes, and the parked append completes — no
    // error ever surfaces to the session.
    let dir = TestDir::new("rescue");
    let rec = one_write_record_len();
    let mut cfg = dir.cfg();
    cfg.segment_bytes = rec; // every record rolls to its own segment
    cfg.fsync = false;
    let fs: Arc<dyn WalStorage> = Arc::new(FsStorage::new(&dir.0));
    cfg.storage = Some(Arc::new(FaultyStorage::new(
        fs,
        FaultSpec {
            capacity: Some(2 * rec), // room for exactly two records
            ..FaultSpec::default()
        },
    )));
    let (wal, _, _) = Wal::open(cfg).unwrap();
    commit_one(&wal, 0, &[(0, 1)]).unwrap(); // segment 0
    commit_one(&wal, 1, &[(0, 2)]).unwrap(); // segment 1, supersedes txn 0
                                             // The device is now full; this append must park under pressure.
    let lsn = wal
        .submit_commit(TxnId(2), &[(EntityId(0), 3)], &[0])
        .unwrap();
    let mut waited = 0;
    while !wal.space_pressure() {
        std::thread::sleep(std::time::Duration::from_millis(1));
        waited += 1;
        assert!(waited < 1000, "writer never reported space pressure");
    }
    // GC deletes the superseded txn 0 → its segment retires (the
    // barrier, txn 1's LSN, is already durable) → space frees.
    wal.note_deleted(&[TxnId(0)]);
    assert_eq!(wal.wait_durable(lsn), Ok(()), "the parked append completed");
    assert_eq!(wal.health(), WalHealth::Ok);
    assert!(wal.stats().segments_truncated >= 1);
    drop(wal);
    let (_wal, commits, _) = Wal::open(dir.cfg()).unwrap();
    let replayed: Vec<u32> = commits.iter().map(|c| c.txn.0).collect();
    assert_eq!(replayed, vec![1, 2], "rescued commit survives reopen");
}

#[test]
fn enospc_at_a_roll_boundary_with_nothing_to_free_fails_stop() {
    // The other half of the ENOSPC contract: when GC has nothing to
    // retire, the escalation window closes and the log fail-stops with
    // a precise error — no hang, no panic, waiters all released.
    let dir = TestDir::new("enospc-stop");
    let rec = one_write_record_len();
    let mut cfg = dir.cfg();
    cfg.segment_bytes = rec;
    cfg.fsync = false;
    let fs: Arc<dyn WalStorage> = Arc::new(FsStorage::new(&dir.0));
    cfg.storage = Some(Arc::new(FaultyStorage::new(
        fs,
        FaultSpec {
            capacity: Some(rec),
            ..FaultSpec::default()
        },
    )));
    let (wal, _, _) = Wal::open(cfg).unwrap();
    commit_one(&wal, 0, &[(0, 1)]).unwrap();
    // The next record starts a fresh segment — ENOSPC exactly at the
    // roll boundary.
    let lsn = wal
        .submit_commit(TxnId(1), &[(EntityId(0), 2)], &[0])
        .unwrap();
    assert_eq!(wal.wait_durable(lsn), Err(WalError::NoSpace));
    assert_eq!(wal.health(), WalHealth::NoSpace);
    assert_eq!(
        wal.submit_commit(TxnId(2), &[(EntityId(0), 3)], &[0]),
        Err(WalError::NoSpace),
        "submissions after the fail-stop name the root cause"
    );
    drop(wal);
    let (_wal, commits, _) = Wal::open(dir.cfg()).unwrap();
    let replayed: Vec<u32> = commits.iter().map(|c| c.txn.0).collect();
    assert_eq!(replayed, vec![0], "the refused record is simply absent");
}

#[test]
fn zero_length_trailing_segment_is_dropped_on_reopen() {
    let dir = TestDir::new("zero-tail");
    {
        let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
        commit_one(&wal, 1, &[(0, 10)]).unwrap();
        commit_one(&wal, 2, &[(1, 20)]).unwrap();
    }
    // A crash can leave a freshly-rolled segment at zero bytes.
    std::fs::File::create(dir.0.join("00000050.wal")).unwrap();
    let (_wal, commits, scan) = Wal::open(dir.cfg()).unwrap();
    assert_eq!(commits.len(), 2, "real commits unaffected");
    assert!(!scan.torn_tail, "an empty file is not a torn tail");
    assert!(scan.segments_dropped >= 1, "the empty segment is dropped");
    assert!(!dir.0.join("00000050.wal").exists());
}

#[test]
fn unreadable_sealed_segment_refuses_then_quarantines() {
    let dir = TestDir::new("unreadable");
    let mut cfg = dir.cfg();
    cfg.segment_bytes = 64;
    {
        let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..12u32 {
            commit_one(&wal, i, &[(0, i as i64)]).unwrap();
        }
    }
    // Make a sealed mid-log segment unreadable through the VFS.
    let fs: Arc<dyn WalStorage> = Arc::new(FsStorage::new(&dir.0));
    let faulty: Arc<dyn WalStorage> = Arc::new(FaultyStorage::new(
        fs,
        FaultSpec {
            open_fail_seg: Some(1),
            ..FaultSpec::default()
        },
    ));
    let mut scfg = cfg.clone();
    scfg.storage = Some(Arc::clone(&faulty));
    let err = match Wal::open(scfg) {
        Err(e) => e,
        Ok(_) => panic!("strict recovery must refuse an unreadable segment"),
    };
    assert!(
        err.to_string().contains("unreadable"),
        "strict refusal names the read failure: {err}"
    );
    let mut qcfg = cfg.clone();
    qcfg.storage = Some(faulty);
    qcfg.recover = RecoverPolicy::Quarantine;
    let (_wal, commits, scan) = Wal::open(qcfg).unwrap();
    assert_eq!(scan.quarantined.len(), 1);
    assert_eq!(scan.quarantined[0].segment, 1);
    assert!(!commits.is_empty(), "readable segments still replay");
    assert!(dir.0.join("00000001.quarantine").exists());
}

#[test]
fn double_close_is_idempotent_and_post_close_submissions_fail() {
    let dir = TestDir::new("double-close");
    let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
    commit_one(&wal, 1, &[(0, 1)]).unwrap();
    wal.close();
    wal.close(); // second close must be a no-op, not a deadlock/panic
    assert_eq!(
        wal.submit_commit(TxnId(2), &[(EntityId(0), 2)], &[0]),
        Err(WalError::Closed)
    );
    drop(wal); // Drop runs close a third time
    let (_wal, commits, _) = Wal::open(dir.cfg()).unwrap();
    assert_eq!(commits.len(), 1);
}

#[test]
fn unflushed_batch_waiters_observe_the_crash() {
    let dir = TestDir::new("waiters");
    let (wal, _, _) = Wal::open(dir.cfg()).unwrap();
    commit_one(&wal, 1, &[(0, 1)]).unwrap();
    wal.arm_crash(CrashPoint::BeforeAppend);
    assert_eq!(
        commit_one(&wal, 2, &[(0, 2)]).unwrap_err(),
        WalError::Crashed
    );
    // A waiter for an LSN the log never flushed must not hang.
    assert_eq!(wal.wait_durable(u64::MAX), Err(WalError::Crashed));
    // But already-durable LSNs still report success.
    assert_eq!(wal.wait_durable(1), Ok(()));
}

/// Regression for a data-loss bug the simulated crash-loop scenario
/// found: after the log crashes, in-memory commits still mutate the
/// conflict graph, so the engine's GC can judge a transaction
/// noncurrent on the strength of a supersessor the log never accepted
/// — and `note_deleted` would retire the only durable copy of its
/// writes. Post-crash retirement must be a no-op.
#[test]
fn retirement_after_crash_is_ignored() {
    let dir = TestDir::new("retire-post-crash");
    let mut cfg = dir.cfg();
    cfg.segment_bytes = 64; // roughly one record per segment
    let (wal, _, _) = Wal::open(cfg.clone()).unwrap();
    for i in 0..6u32 {
        commit_one(&wal, i, &[(0, i as i64)]).unwrap();
    }
    wal.arm_crash(CrashPoint::MidFlushTorn);
    assert_eq!(
        commit_one(&wal, 6, &[(0, 60)]).unwrap_err(),
        WalError::Crashed
    );
    // A sweep racing the shutdown reports every earlier txn deleted
    // (their "supersessor" was the record the crash just refused).
    let victims: Vec<TxnId> = (0..6).map(TxnId).collect();
    let truncated_before = wal.stats().segments_truncated;
    wal.note_deleted(&victims);
    assert_eq!(
        wal.stats().segments_truncated,
        truncated_before,
        "post-crash retirement must not unlink any segment"
    );
    drop(wal);

    // Every durable commit survives to recovery.
    let (_wal, commits, _) = Wal::open(cfg).unwrap();
    let replayed: Vec<u32> = commits.iter().map(|c| c.txn.0).collect();
    assert_eq!(replayed, vec![0, 1, 2, 3, 4, 5]);
}
