//! Bank-transfer workload executed against real storage.
//!
//! ```text
//! cargo run --example banking
//! ```
//!
//! Pairs of transfers run **interleaved** (both read, then both write)
//! through the conflict-graph scheduler with the greedy-C1 deletion
//! policy; reads and writes go through [`deltx::storage`]'s multi-version
//! store with atomic install at the final write. The example verifies the
//! paper's correctness contract on actual data: whatever interleaving the
//! scheduler accepts conserves the total balance, transfers that would
//! break serializability abort (and their staged writes vanish), and the
//! deletion policy keeps the graph tiny without changing any decision.

use deltx::core::policy::{DeletionPolicy, GreedyC1};
use deltx::core::{Applied, CgState};
use deltx::model::{EntityId, Step, TxnId};
use deltx::storage::{Store, TxnBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: u32 = 8;
const INITIAL: i64 = 1_000;
const PAIRS: u32 = 100;

struct Transfer {
    id: u32,
    from: u32,
    to: u32,
    amount: i64,
    buf: TxnBuffer,
    alive: bool,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = Store::new();
    let mut cg = CgState::new();
    // Seed balances with one setup transaction.
    {
        let mut setup = TxnBuffer::new(TxnId(1));
        for a in 0..ACCOUNTS {
            setup.stage_write(EntityId(a), INITIAL);
        }
        cg.apply(&Step::begin(1)).unwrap();
        cg.apply(&Step::write_all(1, 0..ACCOUNTS)).unwrap();
        setup.install(&mut store);
    }

    let mut policy = GreedyC1;
    let mut committed = 0u32;
    let mut aborted = 0u32;
    let mut peak_nodes = 0usize;

    let track = |cg: &CgState, peak: &mut usize| {
        *peak = (*peak).max(cg.graph().node_count());
    };

    for p in 0..PAIRS {
        // Two concurrent transfers; overlapping accounts are likely.
        let mut pair: Vec<Transfer> = (0..2)
            .map(|k| {
                let id = 2 + p * 2 + k;
                let from = rng.gen_range(0..ACCOUNTS);
                let to = (from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
                Transfer {
                    id,
                    from,
                    to,
                    amount: rng.gen_range(1..50),
                    buf: TxnBuffer::new(TxnId(id)),
                    alive: true,
                }
            })
            .collect();
        for t in pair.iter_mut() {
            cg.apply(&Step::begin(t.id)).unwrap();
        }
        // Interleaved read phase.
        for t in pair.iter_mut() {
            if !t.alive {
                continue;
            }
            for acct in [t.from, t.to] {
                let _ = t.buf.read(&store, EntityId(acct));
                if cg.apply(&Step::read(t.id, acct)).unwrap() != Applied::Accepted {
                    t.alive = false;
                    break;
                }
            }
            track(&cg, &mut peak_nodes);
        }
        // Interleaved write phase: install only if the final write is
        // accepted by the scheduler.
        for t in pair.iter_mut() {
            if !t.alive {
                aborted += 1;
                continue;
            }
            let bal_from = t.buf.read_log()[0].1;
            let bal_to = t.buf.read_log()[1].1;
            t.buf.stage_write(EntityId(t.from), bal_from - t.amount);
            t.buf.stage_write(EntityId(t.to), bal_to + t.amount);
            match cg.apply(&Step::write_all(t.id, [t.from, t.to])).unwrap() {
                Applied::Accepted => {
                    t.buf.install(&mut store);
                    committed += 1;
                }
                _ => {
                    t.alive = false;
                    aborted += 1;
                }
            }
            track(&cg, &mut peak_nodes);
            policy.reduce(&mut cg);
        }
    }

    let total: i64 = (0..ACCOUNTS).map(|a| store.read(EntityId(a))).sum();
    println!("transfers committed: {committed}, aborted: {aborted}");
    println!(
        "total balance: {total} (expected {})",
        i64::from(ACCOUNTS) * INITIAL
    );
    assert_eq!(total, i64::from(ACCOUNTS) * INITIAL, "money leaked!");
    println!(
        "peak conflict-graph size under greedy-C1: {peak_nodes} nodes (vs {} transactions run)",
        PAIRS * 2 + 1
    );
    println!("deletions performed: {}", cg.stats().deletions);
    println!(
        "current-value writers known to storage: {:?}",
        (0..4)
            .map(|a| store.current_writer(EntityId(a)))
            .collect::<Vec<_>>()
    );
}
