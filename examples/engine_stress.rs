//! Engine stress driver: N worker threads hammer the sharded engine
//! with a contended banking mix while the background GC keeps the
//! conflict graph bounded.
//!
//! ```text
//! cargo run --release --example engine_stress                  # 8 threads, 10k txns
//! cargo run --release --example engine_stress -- 16 40000 64 30 all-locks all-locks-gc
//! #                       threads ───────────────┘    │    │  │      │         │
//! #                       total txns ────────────────-┘    │  │      │         │
//! #                       entities ────────────────────────┘  │      │         │
//! #                       cross-shard % ──────────────────────┘      │         │
//! #   flags (any order): "all-locks" disables partial escalation ────┘         │
//! #                      "all-locks-gc" forces stop-the-world multi-shard GC ──┘
//! #                      "shard-loops": run the engine in
//! #                       ExecutionMode::ShardLoops — each shard a
//! #                       single-writer loop fed by a command mailbox
//! #                       (flat-combining fast path), cross-shard plans
//! #                       choreographed by pinning loops ascending. Same
//! #                       decisions, same final stores; contention
//! #                       throughput lands in BENCH_10.json for the A/B
//! #                       against the mutex baseline
//! #                      "--contention": cross traffic hits many DISJOINT hot
//! #                       shard pairs (0↔1, 2↔3, …) instead of uniform pairs —
//! #                       the worst case for a single coordination mutex, the
//! #                       best case for the sharded registry
//! #                      "--durable": run with the write-ahead log enabled,
//! #                       then drop the engine, replay the log into a fresh
//! #                       one, and assert every balance survived the crash
//! #                       boundary byte-for-byte (recovery time is reported
//! #                       and written to BENCH_6.json)
//! #                      "--fsync": like --durable, but with a real fsync
//! #                       after every batch write — benchmarks the device,
//! #                       not just the protocol. Per-flush p50/p99 latency
//! #                       and the mean group-commit batch size are merged
//! #                       into BENCH_9.json
//! #                      "--seed N": fix the run's RNG seed (takes
//! #                       precedence over the DELTX_SEED env var); every
//! #                       failure message echoes the effective seed so any
//! #                       red run is replayable
//! ```
//!
//! Every transaction transfers between two accounts (read both, write
//! both), so the sum of all balances is an end-to-end serializability
//! invariant: any lost update or dirty interleaving would break it.
//! The driver asserts it, asserts the live graph stayed `O(active)`,
//! asserts zero boundary-count underflows, and prints the engine's
//! metrics. Headline numbers are merged into `BENCH_6.json` at the
//! repository root so CI can archive them across runs.

use deltx_engine::{
    bench_report, run_seed_arg, DurabilityConfig, Engine, EngineConfig, ExecutionMode, GcPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--seed N` mirrors the DELTX_SEED env var (and wins over it);
    // pulled out before the positional parse since it takes a value.
    let mut cli_seed: Option<u64> = None;
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(v) => {
                cli_seed = Some(v);
                args.drain(i..=i + 1);
            }
            None => {
                eprintln!("--seed requires an integer value");
                std::process::exit(2);
            }
        }
    }
    let threads: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let total_txns: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000)
        .max(1);
    let n_entities: u32 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
        .max(1);
    let cross_pct: u32 = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25)
        .min(100);
    let flags: Vec<&str> = args.iter().skip(4).map(String::as_str).collect();
    if let Some(bad) = flags.iter().find(|f| {
        !matches!(
            **f,
            "all-locks" | "all-locks-gc" | "shard-loops" | "--contention" | "--durable" | "--fsync"
        )
    }) {
        eprintln!(
            "unknown flag `{bad}` (expected `all-locks`, `all-locks-gc`, \
             `shard-loops`, `--contention`, `--durable`, `--fsync` and/or `--seed N`)"
        );
        std::process::exit(2);
    }
    let partial: bool = !flags.contains(&"all-locks");
    let partial_gc: bool = !flags.contains(&"all-locks-gc");
    let loops: bool = flags.contains(&"shard-loops");
    let contention: bool = flags.contains(&"--contention");
    let fsync: bool = flags.contains(&"--fsync");
    let durable: bool = flags.contains(&"--durable") || fsync;
    let shards = 8usize;
    let seed = run_seed_arg(cli_seed, 0xD17A);

    let wal_dir: Option<PathBuf> = durable.then(|| {
        let dir = std::env::temp_dir().join(format!("deltx-stress-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let durability = |dir: &PathBuf| DurabilityConfig {
        // Small segments so the long run exercises GC-driven log
        // truncation; fsync off (unless --fsync) so the default bench
        // measures the protocol, not the device.
        segment_bytes: 64 * 1024,
        fsync,
        ..DurabilityConfig::new(dir.clone())
    };

    let engine = Engine::new(EngineConfig {
        shards,
        gc: GcPolicy::Noncurrent,
        // 8ms keeps the GC tick rate one both execution modes can
        // sustain under contention: at 1ms the mutex engine's sweeps
        // are lock-starved (it completes ~7x fewer than scheduled)
        // while shard-loops sweeps keep pace, so the A/B would compare
        // engines doing different amounts of GC work.
        gc_interval: Duration::from_millis(8),
        background_gc: true,
        record_history: false,
        partial_escalation: partial,
        partial_gc,
        execution: if loops {
            ExecutionMode::ShardLoops
        } else {
            ExecutionMode::Mutex
        },
        durability: wal_dir.as_ref().map(&durability),
        ..EngineConfig::default()
    });

    println!(
        "engine_stress: {threads} threads x {} txns, {n_entities} entities, \
         {shards} shards, {cross_pct}% cross-shard{}{}{}",
        total_txns / threads,
        if loops {
            " (shard-loops execution)"
        } else {
            ""
        },
        if contention {
            " (contention mode: disjoint hot shard pairs)"
        } else {
            ""
        },
        if fsync {
            " (durable: WAL on, fsync per batch)"
        } else if durable {
            " (durable: WAL on)"
        } else {
            ""
        }
    );

    let committed = AtomicUsize::new(0);
    let aborted = AtomicUsize::new(0);
    let peak_nodes = AtomicUsize::new(0);
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let engine = &engine;
            let committed = &committed;
            let aborted = &aborted;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed + tid as u64);
                let per_thread = total_txns / threads;
                for _ in 0..per_thread {
                    let span = (n_entities / shards as u32).max(1);
                    let (x, y) = if rng.gen_range(0u32..100) < cross_pct {
                        if contention {
                            // Disjoint hot pairs: shard 2i <-> 2i+1.
                            // Each pair's closure is {2i, 2i+1}, so
                            // partial escalation never serializes two
                            // different pairs on the same locks.
                            let pair = rng.gen_range(0..shards as u32 / 2);
                            // The modulo only matters when entities <
                            // shards (keeps every account inside the
                            // balance-summed range).
                            (
                                (2 * pair + shards as u32 * rng.gen_range(0..span)) % n_entities,
                                (2 * pair + 1 + shards as u32 * rng.gen_range(0..span))
                                    % n_entities,
                            )
                        } else {
                            (rng.gen_range(0..n_entities), rng.gen_range(0..n_entities))
                        }
                    } else {
                        let s = rng.gen_range(0..shards as u32);
                        (
                            s + shards as u32 * rng.gen_range(0..span),
                            s + shards as u32 * rng.gen_range(0..span),
                        )
                    };
                    let mut t = engine.begin();
                    let Ok(a) = t.read(x) else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let b = if y != x {
                        match t.read(y) {
                            Ok(v) => v,
                            Err(_) => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    } else {
                        0
                    };
                    let amount = rng.gen_range(1i64..100);
                    if y != x {
                        t.write(x, a - amount);
                        t.write(y, b + amount);
                    } else {
                        t.write(x, a); // self-transfer
                    }
                    match t.commit() {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Sampler: watch the live graph while the workers run.
        let engine = &engine;
        let peak = &peak_nodes;
        let done = &committed;
        scope.spawn(move || {
            let target = total_txns;
            loop {
                std::thread::sleep(Duration::from_millis(5));
                let nodes = engine.graph_size().nodes;
                peak.fetch_max(nodes, Ordering::Relaxed);
                let m = engine.metrics();
                if (m.commits + m.aborts_scheduler + m.aborts_voluntary) as usize >= target
                    || done.load(Ordering::Relaxed) >= target
                {
                    return;
                }
            }
        });
    });

    let elapsed = t0.elapsed();
    engine.gc_sweep();
    let m = engine.metrics();

    // End-to-end value check: transfers conserve the total balance.
    let sum: i64 = (0..n_entities).map(|x| engine.peek(x)).sum();
    assert_eq!(
        sum, 0,
        "balance sum must be conserved (serializability) [seed {seed}]"
    );

    // Contention mode's sharper oracle: every hot pair's closure
    // {2i, 2i+1} is closed under its traffic (cross transfers stay in
    // the pair, same-shard transfers in one shard), so each pair must
    // conserve its own sum — a leak localizes the failure to one
    // closure, and the echoed seed makes the red run replayable. Only
    // meaningful when the entity universe tiles the shards evenly;
    // otherwise the `% n_entities` wrap bleeds across pairs.
    if contention && n_entities.is_multiple_of(shards as u32) {
        for pair in 0..shards as u32 / 2 {
            let pair_sum: i64 = (0..n_entities)
                .filter(|x| (x % shards as u32) / 2 == pair)
                .map(|x| engine.peek(x))
                .sum();
            assert_eq!(
                pair_sum,
                0,
                "hot pair {pair} (shards {}\u{2194}{}) leaked value across its \
                 closure [seed {seed}]",
                2 * pair,
                2 * pair + 1
            );
        }
    }

    // Bookkeeping tripwire: the registry and the per-shard boundary
    // counts must never disagree, under any locking mode.
    assert_eq!(
        m.boundary_underflows, 0,
        "boundary-count underflow: registry / shard-count drift [seed {seed}]"
    );

    // The paper's promise: live graph stays O(active), not O(history).
    let bound = threads + 4 * n_entities as usize + 16;
    let peak = peak_nodes.load(Ordering::Relaxed);
    assert!(
        peak <= bound,
        "peak live graph {peak} exceeded O(active) bound {bound} [seed {seed}]"
    );

    let secs = elapsed.as_secs_f64();
    let txn_s = (m.commits + m.aborts_scheduler) as f64 / secs;
    println!("\n== results ==");
    println!(
        "{} commits, {} scheduler aborts in {:.2}s  ({:.0} txn/s)",
        m.commits, m.aborts_scheduler, secs, txn_s
    );
    println!("peak live graph: {peak} nodes (bound {bound}) — memory stayed O(active)");
    println!("\n{m}");

    let bench_path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_6.json"));
    let mut entries: Vec<(&str, String)> = vec![
        ("stress_txn_s", format!("{txn_s:.0}")),
        ("stress_peak_nodes", format!("{peak}")),
    ];

    if let Some(dir) = &wal_dir {
        // Crash boundary: snapshot what the clients could observe, drop
        // the engine (log is the only survivor), replay it into a fresh
        // engine, and demand byte-for-byte agreement.
        let expected: Vec<i64> = (0..n_entities).map(|x| engine.peek(x)).collect();
        let wal = engine.wal_stats().expect("durable run has a WAL");
        println!(
            "wal: {} flushes / {} records (mean batch {:.1}), {} segments truncated",
            wal.flushes,
            wal.records,
            wal.mean_batch(),
            wal.segments_truncated
        );
        if fsync {
            // The real-device numbers: what one fsync'd group commit
            // costs, and how many commits it amortizes over. These go
            // to their own report so protocol-only BENCH_6 numbers
            // are never mixed with device-bound ones.
            let p50_us = wal.flush_quantile_nanos(0.50) as f64 / 1e3;
            let p99_us = wal.flush_quantile_nanos(0.99) as f64 / 1e3;
            println!(
                "fsync: flush p50 ~{p50_us:.0}us, p99 ~{p99_us:.0}us, \
                 mean batch {:.1} records/fsync",
                wal.mean_batch()
            );
            let fsync_path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_9.json"));
            let fsync_entries: Vec<(&str, String)> = vec![
                ("fsync_flush_p50_us", format!("{p50_us:.0}")),
                ("fsync_flush_p99_us", format!("{p99_us:.0}")),
                ("fsync_mean_batch", format!("{:.1}", wal.mean_batch())),
                ("fsync_flushes", wal.flushes.to_string()),
                ("fsync_txn_s", format!("{txn_s:.0}")),
            ];
            if let Err(e) = bench_report::merge_json(&fsync_path, &fsync_entries) {
                eprintln!("warning: could not write {}: {e}", fsync_path.display());
            }
        }
        drop(engine);

        let (recovered, report) = Engine::open(EngineConfig {
            shards,
            durability: Some(durability(dir)),
            ..EngineConfig::default()
        })
        .expect("recovery must succeed");
        let recovery_ms = report.elapsed.as_secs_f64() * 1e3;
        println!(
            "recovery: {} commits replayed from {} segments in {recovery_ms:.2}ms \
             (log bounded by GC: survivors ≪ {} total commits)",
            report.commits_replayed, report.segments_scanned, m.commits
        );
        for (x, want) in expected.iter().enumerate() {
            let got = recovered.peek(x as u32);
            assert_eq!(
                got, *want,
                "entity {x} diverged across recovery: {got} != {want} [seed {seed}]"
            );
        }
        assert!(
            wal.segments_truncated > 0 || m.commits < 2_000,
            "a long durable run must see GC truncate dead log segments [seed {seed}]"
        );
        entries.push(("recovery_ms", format!("{recovery_ms:.2}")));
        entries.push((
            "recovery_commits_replayed",
            report.commits_replayed.to_string(),
        ));
        entries.push(("wal_mean_batch", format!("{:.1}", wal.mean_batch())));
        entries.push(("wal_segments_truncated", wal.segments_truncated.to_string()));
        println!("recovery check passed: all {n_entities} balances survived the crash boundary");
        drop(recovered);
        let _ = std::fs::remove_dir_all(dir);
    }

    if let Err(e) = bench_report::merge_json(&bench_path, &entries) {
        eprintln!("warning: could not write {}: {e}", bench_path.display());
    }

    // The shard-loops A/B: contention throughput per (execution mode,
    // lock strategy) cell, all four in one report so CI can compare
    // loops against the mutex baseline side by side.
    if contention {
        let key = match (loops, partial) {
            (true, true) => "contention_loops_partial_txn_s",
            (true, false) => "contention_loops_all_locks_txn_s",
            (false, true) => "contention_mutex_partial_txn_s",
            (false, false) => "contention_mutex_all_locks_txn_s",
        };
        let mut cells: Vec<(&str, String)> = vec![(key, format!("{txn_s:.0}"))];
        if loops {
            let batches: u64 = m.mailbox_depth_hist.iter().sum();
            let coord_mean_ns = m
                .coord_round_trip_nanos
                .checked_div(m.coord_timed_rounds)
                .unwrap_or(0);
            cells.push(("loops_mailbox_batches", batches.to_string()));
            cells.push(("loops_hint_escalations", m.hint_escalations.to_string()));
            cells.push(("loops_coord_rounds", m.coord_round_trips.to_string()));
            cells.push(("loops_coord_mean_ns", coord_mean_ns.to_string()));
        }
        let cell_path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_10.json"));
        if let Err(e) = bench_report::merge_json(&cell_path, &cells) {
            eprintln!("warning: could not write {}: {e}", cell_path.display());
        }
    }
}
