//! The workload that motivates the whole paper: a long-running analytics
//! scan holds the conflict graph hostage while OLTP writers churn.
//!
//! ```text
//! cargo run --release --example long_running_analytics
//! ```
//!
//! One reporting transaction reads a slice of the database and stays
//! active; hundreds of short update transactions complete behind it. A
//! conflict-graph scheduler cannot close *any* of them at commit (§1) —
//! watch the graph grow without a deletion policy, stay flat with the
//! C1 policies, and watch strict 2PL keep memory flat by *blocking* the
//! updates instead.

use deltx::core::policy::{BatchC2, GreedyC1, Noncurrent};
use deltx::model::workload::{long_running_reader, LongReaderConfig};
use deltx::sched::locking::TwoPhaseLocking;
use deltx::sched::preventive::Preventive;
use deltx::sched::reduced::Reduced;
use deltx::sched::Scheduler;
use deltx::sim::driver::drive;

fn main() {
    let cfg = LongReaderConfig {
        reader_scan: 12,
        n_writers: 400,
        n_entities: 24,
        seed: 2026,
    };
    let schedule = long_running_reader(&cfg);
    println!(
        "workload: 1 analytics reader scanning {} entities, {} update txns over {} entities\n",
        cfg.reader_scan, cfg.n_writers, cfg.n_entities
    );

    println!(
        "{:<16} {:>10} {:>11} {:>9} {:>7} {:>9} {:>6}",
        "scheduler", "peak nodes", "final nodes", "accepted", "blocks", "aborted", "CSR"
    );
    let run = |sched: &mut dyn Scheduler| {
        let m = drive(schedule.steps(), sched, 0);
        println!(
            "{:<16} {:>10} {:>11} {:>9} {:>7} {:>9} {:>6}",
            m.scheduler,
            m.peak_nodes,
            m.final_nodes,
            m.accepted,
            m.block_events,
            m.aborted_txns,
            m.csr_ok
        );
        m
    };

    let m_none = run(&mut Preventive::new());
    run(&mut Reduced::new(Noncurrent));
    let m_greedy = run(&mut Reduced::new(GreedyC1));
    run(&mut Reduced::new(BatchC2));
    let m_2pl = run(&mut TwoPhaseLocking::new());

    println!(
        "\nwithout deletion the scheduler remembers {} transactions; greedy-C1 needs {} ({}x less).",
        m_none.peak_nodes,
        m_greedy.peak_nodes,
        m_none.peak_nodes / m_greedy.peak_nodes.max(1)
    );
    println!(
        "2PL stays at {} remembered transactions but blocked {} times and accepted {} fewer steps —",
        m_2pl.peak_nodes,
        m_2pl.block_events,
        m_greedy.accepted.saturating_sub(m_2pl.accepted)
    );
    println!(
        "the paper's trade in one table: locking closes at commit, conflict graphs need Theorem 1."
    );

    // Growth curve (sampled) for the no-deletion run.
    let m_series = drive(schedule.steps(), &mut Preventive::new(), 100);
    println!("\nconflict-graph growth without deletion (step, nodes):");
    for (i, n) in m_series.node_series.iter() {
        let bar = "#".repeat(n / 5);
        println!("  {i:>5} {n:>4} {bar}");
    }
}
