//! The two hardness results, demonstrated end to end.
//!
//! ```text
//! cargo run --release --example np_hardness
//! ```
//!
//! **Theorem 5** — choosing the *largest* set of transactions to forget
//! is NP-complete: we embed a SET COVER instance into a schedule, solve
//! it exactly on the graph (branch & bound over C2) and compare with the
//! combinatorial solvers.
//!
//! **Theorem 6** — in the multiple-write model even deciding whether
//! *one* transaction can be forgotten is NP-complete: we embed 3-SAT
//! formulas into Figure-3 conflict graphs and watch the exact C3 checker
//! sweep abort subsets while DPLL answers in microseconds.

use deltx::core::mw::MwPhase;
use deltx::core::{c2, c3};
use deltx::reductions::sat::{dpll, Cnf};
use deltx::reductions::setcover::{greedy_cover, min_cover_exact, SetCoverInstance};
use deltx::reductions::{to_graph, to_schedule};
use std::time::Instant;

fn main() {
    println!("=== Theorem 5: maximum safe deletion set ===\n");
    let inst = SetCoverInstance::random(10, 8, 4, 2, 11);
    println!("SET COVER: universe 10, {} sets", inst.sets.len());
    let t5 = to_schedule::build(&inst);
    let cg = to_schedule::run(&t5);
    let nodes = to_schedule::set_nodes(&t5, &cg);

    let t0 = Instant::now();
    let exact = c2::max_safe_exact(&cg, &nodes);
    let exact_dt = t0.elapsed();
    let t0 = Instant::now();
    let greedy = c2::grow_greedy(&cg, &nodes);
    let greedy_dt = t0.elapsed();
    let mincover = min_cover_exact(&inst).unwrap().len();
    let gcover = greedy_cover(&inst).unwrap().len();

    println!(
        "  graph exact max-deletable : {} txns in {exact_dt:?}",
        exact.len()
    );
    println!(
        "  graph greedy deletable    : {} txns in {greedy_dt:?}",
        greedy.len()
    );
    println!("  m - min_cover (exact)     : {}", t5.m - mincover);
    println!("  m - greedy_cover          : {}", t5.m - gcover);
    assert_eq!(exact.len(), t5.m - mincover, "Theorem 5 correspondence");
    println!("  -> the graph answer equals the set-cover answer, as Theorem 5 demands\n");

    println!("=== Theorem 6: single deletion, multiple-write model ===\n");
    for (label, f) in [
        ("satisfiable   (ratio 2.0)", Cnf::random_3sat(4, 8, 3)),
        ("unsatisfiable (ratio 10m)", Cnf::random_3sat(3, 40, 1)),
    ] {
        let gadget = to_graph::build(&f);
        let actives = gadget.state.nodes_in_phase(MwPhase::Active).len();
        let t0 = Instant::now();
        let sat = dpll(&f).is_some();
        let dpll_dt = t0.elapsed();
        let t0 = Instant::now();
        let (violation, scanned) = c3::violation_exact(&gadget.state, gadget.c);
        let c3_dt = t0.elapsed();
        println!(
            "  formula {label}: {} vars, {} clauses",
            f.n_vars,
            f.clauses.len()
        );
        println!(
            "    DPLL: {} in {dpll_dt:?}",
            if sat { "SAT" } else { "UNSAT" }
        );
        println!(
            "    exact C3 on the Figure-3 gadget ({} nodes, {actives} active): scanned {scanned}/{} subsets in {c3_dt:?}",
            gadget.state.nodes().count(),
            1u64 << actives,
        );
        println!(
            "    C deletable: {}  (Theorem 6: deletable iff UNSAT)\n",
            violation.is_none()
        );
        assert_eq!(violation.is_none(), !sat);
    }
    println!("both hardness constructions verified against their source-problem solvers.");
}
