//! The predeclared model (§5) and Example 2 / Figure 4.
//!
//! ```text
//! cargo run --example predeclared
//! ```
//!
//! When transactions declare their read/write sets up front the
//! scheduler can *delay* steps instead of aborting transactions, and the
//! deletion condition becomes C4 — whose second clause (added in the
//! journal version of the paper) is exactly what makes transaction `C`
//! of Example 2 deletable.

use deltx::core::examples_paper::{figure4, figure4_dot};
use deltx::core::pre::PreApplied;
use deltx::core::{c4, CgError};
use deltx::model::{AccessMode, EntityId, Op, TxnId, TxnSpec};
use deltx::sched::predeclared::PredeclaredDriver;

fn main() -> Result<(), CgError> {
    println!("=== Example 2 / Figure 4 ===\n");
    let fig = figure4();
    println!("{}", figure4_dot(&fig));
    println!("A is active with one declared step left: read(y).");
    for (name, n) in [("B", fig.b), ("C", fig.c)] {
        println!(
            "  C4({name}) = {:<5}   PODS-86 clause-1-only variant = {}",
            c4::holds(&fig.state, n),
            c4::holds_pods86(&fig.state, n),
        );
    }
    println!("\nwhy C is safe: any new transaction D that would write y ahead of A");
    println!("declares that write at BEGIN, receives the arc B -> D (B already read y),");
    println!("and its write is DELAYED because D -> A would close a cycle. Watch:\n");

    let mut pre = fig.state.clone();
    pre.delete(fig.c)?;
    let d_spec = TxnSpec {
        id: TxnId(4),
        ops: vec![Op::Write(EntityId(2))], // y
    };
    pre.begin(&d_spec)?;
    let out = pre.step(TxnId(4), EntityId(2), AccessMode::Write)?;
    println!("  D writes y before A's read -> {out:?}");
    let out = pre.step(TxnId(1), EntityId(2), AccessMode::Read)?;
    println!("  A reads y                  -> {out:?}");
    let out = pre.step(TxnId(4), EntityId(2), AccessMode::Write)?;
    println!("  D retries its write        -> {out:?}");
    assert_eq!(out, PreApplied::Accepted);

    println!("\n=== a contended workload, no aborts ever ===\n");
    let mut driver = PredeclaredDriver::with_gc();
    // A ring of conflicting transactions that would deadlock a naive
    // scheduler: each reads its slot and writes the next.
    for i in 0..6u32 {
        driver.submit(&TxnSpec {
            id: TxnId(100 + i),
            ops: vec![Op::Read(EntityId(i)), Op::Write(EntityId((i + 1) % 6))],
        })?;
    }
    driver
        .run_to_completion()
        .expect("the paper proves no deadlock");
    println!(
        "ring of 6 contended transactions completed with {} delays, 0 aborts;",
        driver.delays
    );
    println!(
        "C4 garbage collection deleted {} of them on the fly (peak graph: {} nodes).",
        driver.deletions, driver.peak_nodes
    );
    Ok(())
}
