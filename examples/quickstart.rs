//! Quickstart: the paper's Example 1, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the schedule `b1 r1(x) b2 r2(x) w2(x) b3 r3(x) w3(x)`, inspects
//! the conflict graph (Figure 1), asks condition C1 who may be forgotten,
//! deletes a transaction, and shows why deleting *both* candidates would
//! have been wrong.

use deltx::core::{c1, c2, noncurrent, oracle, CgState};
use deltx::graph::dot;
use deltx::model::{dsl, TxnId};
use std::collections::BTreeSet;

fn main() {
    // Example 1: T1 reads x and stays active; T2 then T3 read and write x.
    let schedule = dsl::parse("b1 r1(x) b2 r2(x) w2(x) b3 r3(x) w3(x)").expect("parse");
    println!("schedule p: {schedule}\n");

    let mut cg = CgState::new();
    for step in schedule.steps() {
        let outcome = cg.apply(step).expect("well-formed");
        println!("  {:<8} -> {outcome:?}", schedule.format_step(step));
    }

    let _t1 = cg.node_of(TxnId(1)).unwrap();
    let t2 = cg.node_of(TxnId(2)).unwrap();
    let t3 = cg.node_of(TxnId(3)).unwrap();

    println!("\nconflict graph CG(p) — the paper's Figure 1:");
    print!(
        "{}",
        dot::to_arc_list(cg.graph(), |n| cg.info(n).txn.to_string())
    );

    println!("\nwho can be closed (condition C1, Theorem 1)?");
    for (name, n) in [("T2", t2), ("T3", t3)] {
        println!(
            "  {name}: C1 {:<5}  current: {}",
            c1::holds(&cg, n),
            noncurrent::is_current(&cg, n)
        );
    }
    println!(
        "  both together (condition C2, Theorem 4)? {}",
        c2::holds(&cg, &BTreeSet::from([t2, t3]))
    );

    // Delete T2 (safe); then show T3 is no longer deletable (Theorem 3 on
    // the reduced graph).
    let before = cg.clone();
    cg.delete(t2).expect("T2 completed");
    println!("\nafter deleting T2:");
    print!(
        "{}",
        dot::to_arc_list(cg.graph(), |n| cg.info(n).txn.to_string())
    );
    println!("  C1(T3) on the reduced graph: {}", c1::holds(&cg, t3));

    // What would have gone wrong if we had deleted both? The safety
    // oracle finds the diverging continuation.
    let mut both = before.clone();
    both.delete(t2).unwrap();
    both.delete(t3).unwrap();
    let bounds = oracle::OracleBounds {
        max_depth: 3,
        max_new_txns: 0,
        fresh_entity: false,
    };
    match oracle::exhaustive_divergence(&before, &both, &bounds) {
        Some(cont) => {
            let pretty: Vec<String> = cont.iter().map(|s| schedule.format_step(s)).collect();
            println!(
                "\ndeleting BOTH is unsafe — witness continuation: {}",
                pretty.join(" ")
            );
            println!("(the full scheduler rejects its last step; the over-reduced one accepts, breaking serializability)");
        }
        None => println!("\nunexpected: no divergence found"),
    }

    println!("\nstats: {:?}", cg.stats());
}
