//! # deltx — Deleting Completed Transactions
//!
//! Umbrella crate re-exporting the full public API of the `deltx`
//! workspace: a production-quality Rust reproduction of
//!
//! > T. Hadzilacos and M. Yannakakis, *"Deleting Completed Transactions"*,
//! > PODS 1986 / JCSS 38(2):360–379, 1989.
//!
//! The paper answers: in a conflict-graph (serialization-graph) scheduler,
//! **when can a completed transaction be forgotten** — removed from the
//! graph — without ever accepting a non-serializable schedule? See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced results.
//!
//! ## Crate map
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`model`] | transactions, schedules, the text DSL, workload generators |
//! | [`graph`] | digraph substrate: cycle checks, transitive closure, tight paths |
//! | [`core`] | conflict-graph rules, reduced graphs, conditions C1–C4, policies, safety oracle |
//! | [`storage`] | versioned in-memory entity store |
//! | [`sched`] | schedulers: preventive / certifier / reduced+policy / 2PL / predeclared / multi-write |
//! | [`reductions`] | Theorem 5 & 6 NP-completeness constructions, set-cover and SAT solvers |
//! | [`sim`] | simulation driver, metrics, experiment suite E1–E13 |
//!
//! ## Quickstart
//!
//! ```
//! use deltx::core::{CgState, c1};
//! use deltx::model::dsl;
//!
//! // Example 1 / Figure 1 of the paper: T1 reads x and stays active;
//! // T2 then T3 read and write x and complete.
//! let schedule = dsl::parse("b1 r1(x) b2 r2(x) w2(x) b3 r3(x) w3(x)").unwrap();
//! let mut cg = CgState::new();
//! for step in schedule.steps() {
//!     cg.apply(step).unwrap();
//! }
//! let t2 = cg.node_of(deltx::model::TxnId(2)).unwrap();
//! let t3 = cg.node_of(deltx::model::TxnId(3)).unwrap();
//! // Both T2 and T3 satisfy condition C1 individually...
//! assert!(c1::holds(&cg, t2));
//! assert!(c1::holds(&cg, t3));
//! // ...but after deleting T3, T2 no longer does (the paper's
//! // counterintuitive phenomenon: eligibility is not monotone).
//! cg.delete(t3);
//! assert!(!c1::holds(&cg, t2));
//! ```

pub use deltx_core as core;
pub use deltx_graph as graph;
pub use deltx_model as model;
pub use deltx_reductions as reductions;
pub use deltx_sched as sched;
pub use deltx_sim as sim;
pub use deltx_storage as storage;
