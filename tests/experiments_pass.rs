//! Runs the full experiment suite (the EXPERIMENTS.md generator) and
//! asserts every paper claim holds. This is the repository's top-level
//! "does the reproduction reproduce" test.

use deltx::sim::experiments;

#[test]
fn all_figures_pass() {
    for rep in experiments::matching("f") {
        assert!(rep.pass, "{} failed:\n{}", rep.id, rep.render());
    }
}

#[test]
fn all_experiments_pass() {
    // Default parameters are sized to finish in seconds in release mode
    // and well under a minute in debug.
    for rep in experiments::matching("e") {
        assert!(rep.pass, "{} failed:\n{}", rep.id, rep.render());
    }
}
