//! Property-based tests over randomly generated schedules: structural
//! invariants of the scheduler state, exactness of C1 vs the constructive
//! oracle, reduced-graph well-formedness under every policy, and
//! noncurrency ⊆ C1.

use deltx::core::policy::{BatchC2, DeletionPolicy, GreedyC1, Noncurrent};
use deltx::core::{c1, c2, noncurrent, oracle, reduced, CgState};
use deltx::model::{Op, Schedule, Step, TxnId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a well-formed basic-model step stream over small domains.
/// Transactions begin in order; each is a few reads then a final write.
fn arb_schedule() -> impl Strategy<Value = Vec<Step>> {
    // Per-txn program: (reads: Vec<entity>, writes: Vec<entity>)
    let program = (
        prop::collection::vec(0u32..4, 0..3),
        prop::collection::vec(0u32..4, 0..2),
    );
    (prop::collection::vec(program, 1..7), any::<u64>()).prop_map(|(programs, seed)| {
        // Interleave round-robin with a seed-driven skew.
        let specs: Vec<Vec<Step>> = programs
            .into_iter()
            .enumerate()
            .map(|(i, (reads, writes))| {
                let id = i as u32 + 1;
                let mut v = vec![Step::begin(id)];
                v.extend(reads.into_iter().map(|x| Step::read(id, x)));
                v.push(Step::write_all(id, writes));
                v
            })
            .collect();
        let mut queues: Vec<std::collections::VecDeque<Step>> =
            specs.into_iter().map(Into::into).collect();
        let mut out = Vec::new();
        let mut rng = seed;
        while queues.iter().any(|q| !q.is_empty()) {
            // xorshift for cheap determinism
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let live: Vec<usize> = queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(i, _)| i)
                .collect();
            let pick = live[(rng as usize) % live.len()];
            out.push(queues[pick].pop_front().expect("nonempty"));
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_state_invariants_hold(steps in arb_schedule()) {
        let mut cg = CgState::new();
        for s in &steps {
            let _ = cg.apply(s).expect("well-formed");
        }
        cg.check_invariants();
    }

    #[test]
    fn c1_matches_singleton_c2(steps in arb_schedule()) {
        let mut cg = CgState::new();
        for s in &steps {
            let _ = cg.apply(s).expect("well-formed");
        }
        for n in cg.completed_nodes() {
            prop_assert_eq!(
                c1::holds(&cg, n),
                c2::holds(&cg, &BTreeSet::from([n]))
            );
        }
    }

    #[test]
    fn noncurrent_implies_c1(steps in arb_schedule()) {
        let mut cg = CgState::new();
        for s in &steps {
            let _ = cg.apply(s).expect("well-formed");
        }
        for n in noncurrent::noncurrent_completed(&cg) {
            prop_assert!(c1::holds(&cg, n), "Corollary 1 violated");
        }
    }

    #[test]
    fn c1_violations_have_diverging_witnesses(steps in arb_schedule()) {
        let mut cg = CgState::new();
        for s in &steps {
            let _ = cg.apply(s).expect("well-formed");
        }
        for n in cg.completed_nodes() {
            if let Some(v) = c1::violation(&cg, n) {
                let cont = oracle::necessity_witness(&cg, n, &v);
                let mut red = cg.clone();
                red.delete(n).expect("completed");
                prop_assert!(
                    oracle::diverges(&cg, &red, &cont).is_some(),
                    "Theorem 1 necessity: witness must diverge"
                );
            }
        }
    }

    #[test]
    fn policies_produce_wellformed_reduced_graphs(steps in arb_schedule()) {
        let run = |mk: &mut dyn DeletionPolicy| {
            let mut cg = CgState::new();
            let mut p = Schedule::new();
            for s in &steps {
                p.push(s.clone());
                let _ = cg.apply(s).expect("well-formed");
                mk.reduce(&mut cg);
                assert_eq!(
                    reduced::is_reduced_graph_of(&cg, &p),
                    Ok(()),
                    "policy {}",
                    mk.name()
                );
            }
        };
        run(&mut GreedyC1);
        run(&mut BatchC2);
        run(&mut Noncurrent);
    }

    #[test]
    fn greedy_deletions_never_change_decisions(steps in arb_schedule()) {
        let mut full = CgState::new();
        let mut red = CgState::new();
        let mut pol = GreedyC1;
        for s in &steps {
            let a = full.apply(s).expect("well-formed");
            let b = red.apply(s).expect("well-formed");
            prop_assert_eq!(a, b, "Theorem 2 violated");
            pol.reduce(&mut red);
        }
    }

    #[test]
    fn c2_is_monotone_downward(steps in arb_schedule()) {
        // If deleting N is safe, deleting any subset of N is safe: the
        // subset's covers only gain candidates. (Implicit in Theorem 4's
        // proof; the policies rely on it.)
        let mut cg = CgState::new();
        for s in &steps {
            let _ = cg.apply(s).expect("well-formed");
        }
        let eligible = c1::eligible(&cg);
        let n_set = c2::grow_greedy(&cg, &eligible);
        prop_assert!(c2::holds(&cg, &n_set));
        // Drop each element in turn; safety must persist.
        for &drop in &n_set {
            let mut smaller = n_set.clone();
            smaller.remove(&drop);
            prop_assert!(
                c2::holds(&cg, &smaller),
                "C2 not downward monotone: removing {:?} broke safety",
                drop
            );
        }
    }

    #[test]
    fn accepted_subschedule_is_always_csr(steps in arb_schedule()) {
        let mut cg = CgState::new();
        let mut executed = Vec::new();
        for s in &steps {
            if cg.apply(s).expect("well-formed") == deltx::core::Applied::Accepted {
                executed.push(s.clone());
            }
        }
        let accepted = Schedule::from_steps(executed)
            .accepted_subschedule(cg.aborted_txns());
        prop_assert!(deltx::model::history::is_csr(&accepted));
    }
}

#[test]
fn txn_ids_unique_in_generated_streams() {
    // Plain test guarding the strategy itself.
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    for _ in 0..10 {
        let steps = arb_schedule().new_tree(&mut runner).expect("gen").current();
        let begins: Vec<TxnId> = steps
            .iter()
            .filter(|s| matches!(s.op, Op::Begin))
            .map(|s| s.txn)
            .collect();
        let mut dedup = begins.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(begins.len(), dedup.len());
    }
}
