//! Cross-crate integration: every scheduler accepts only
//! conflict-serializable subschedules, and every safe deletion policy is
//! observationally equivalent to the full conflict-graph scheduler
//! (Theorem 2) across randomized workloads.

use deltx::core::policy::{BatchC2, CommitTimeUnsafe, GreedyC1, NoDeletion, Noncurrent};
use deltx::model::workload::{
    long_running_reader, LongReaderConfig, ModelKind, WorkloadConfig, WorkloadGen,
};
use deltx::model::Step;
use deltx::sched::certifier::Certifier;
use deltx::sched::equiv::compare_policy_against_full;
use deltx::sched::locking::TwoPhaseLocking;
use deltx::sched::multiwrite::MultiWrite;
use deltx::sched::preventive::Preventive;
use deltx::sched::reduced::Reduced;
use deltx::sim::driver::drive;

fn workloads() -> Vec<(String, Vec<Step>)> {
    let mut out = Vec::new();
    for seed in 0..5u64 {
        let cfg = WorkloadConfig {
            n_entities: 6,
            concurrency: 4,
            total_txns: 60,
            seed,
            ..WorkloadConfig::default()
        };
        out.push((format!("uniform/{seed}"), WorkloadGen::new(cfg).collect()));
    }
    for seed in 0..3u64 {
        let cfg = WorkloadConfig {
            n_entities: 16,
            concurrency: 5,
            total_txns: 60,
            zipf_exponent: Some(1.2),
            seed: 100 + seed,
            ..WorkloadConfig::default()
        };
        out.push((format!("zipf/{seed}"), WorkloadGen::new(cfg).collect()));
    }
    out.push((
        "long-reader".to_string(),
        long_running_reader(&LongReaderConfig::default())
            .steps()
            .to_vec(),
    ));
    out
}

#[test]
fn safe_policies_match_full_scheduler_everywhere() {
    for (name, steps) in workloads() {
        assert_eq!(
            compare_policy_against_full(&steps, &mut NoDeletion),
            None,
            "{name}"
        );
        assert_eq!(
            compare_policy_against_full(&steps, &mut Noncurrent),
            None,
            "{name}"
        );
        assert_eq!(
            compare_policy_against_full(&steps, &mut GreedyC1),
            None,
            "{name}"
        );
        assert_eq!(
            compare_policy_against_full(&steps, &mut BatchC2),
            None,
            "{name}"
        );
    }
}

#[test]
fn every_scheduler_passes_the_csr_audit() {
    for (name, steps) in workloads() {
        let m = drive(&steps, &mut Preventive::new(), 0);
        assert!(m.csr_ok, "preventive on {name}");
        let m = drive(&steps, &mut Reduced::new(GreedyC1), 0);
        assert!(m.csr_ok, "greedy-C1 on {name}");
        let m = drive(&steps, &mut Reduced::new(BatchC2), 0);
        assert!(m.csr_ok, "batch-C2 on {name}");
        let m = drive(&steps, &mut Reduced::new(Noncurrent), 0);
        assert!(m.csr_ok, "noncurrent on {name}");
        let m = drive(&steps, &mut Certifier::new(), 0);
        assert!(m.csr_ok, "certifier on {name}");
        let m = drive(&steps, &mut TwoPhaseLocking::new(), 0);
        assert!(m.csr_ok, "2PL on {name}");
        // On fully-completing workloads deadlock detection must unstick
        // everything; under the long reader, writers of scanned entities
        // legitimately wait forever for its S-locks.
        if name != "long-reader" {
            assert_eq!(m.stuck_steps, 0, "2PL wedged on {name}");
        }
    }
}

#[test]
fn multiwrite_scheduler_csr_and_gc() {
    for seed in 0..4u64 {
        let cfg = WorkloadConfig {
            n_entities: 6,
            concurrency: 3,
            total_txns: 40,
            model: ModelKind::MultiWrite,
            seed: 500 + seed,
            ..WorkloadConfig::default()
        };
        let steps: Vec<Step> = WorkloadGen::new(cfg).collect();
        let m_plain = drive(&steps, &mut MultiWrite::new(), 0);
        assert!(m_plain.csr_ok, "multiwrite plain, seed {seed}");
        let mut gc = MultiWrite::with_gc(6);
        let m_gc = drive(&steps, gc_as_scheduler(&mut gc), 0);
        assert!(m_gc.csr_ok, "multiwrite gc, seed {seed}");
        assert_eq!(
            m_plain.accepted, m_gc.accepted,
            "C3 deletions must not change decisions (seed {seed})"
        );
        assert!(m_gc.peak_nodes <= m_plain.peak_nodes);
    }
}

fn gc_as_scheduler(mw: &mut MultiWrite) -> &mut MultiWrite {
    mw
}

#[test]
fn deletion_policies_vastly_reduce_memory_on_long_reader() {
    let steps = long_running_reader(&LongReaderConfig {
        reader_scan: 8,
        n_writers: 120,
        n_entities: 12,
        seed: 9,
    });
    let m_none = drive(steps.steps(), &mut Preventive::new(), 0);
    let m_greedy = drive(steps.steps(), &mut Reduced::new(GreedyC1), 0);
    assert!(m_none.peak_nodes > 100);
    assert!(m_greedy.peak_nodes < 20);
}

#[test]
fn unsafe_policy_breaks_serializability_somewhere() {
    // Not on every workload — but the adversarial one suffices, and no
    // safe policy may break it anywhere (checked above).
    let p = deltx::model::dsl::parse("b1 r1(x) b2 r2(y) w2(x) w1(y)").unwrap();
    let d = compare_policy_against_full(p.steps(), &mut CommitTimeUnsafe);
    assert!(d.is_some());
}
