//! End-to-end *value* serializability: execute a workload against real
//! storage under the conflict-graph scheduler, then replay the accepted
//! transactions **serially** in a conflict-compatible order and check the
//! final database states match.
//!
//! This is the semantic guarantee behind §2's conflict-serializability:
//! acyclic conflict graph ⟹ some serial order yields the same reads and
//! final state for every interpretation of the transactions' functions.
//! Our interpretation: each transaction writes `sum(reads) + txn_id` to
//! every entity of its write set.

use deltx::core::{Applied, CgState};
use deltx::model::history::conflict_relation;
use deltx::model::workload::{WorkloadConfig, WorkloadGen};
use deltx::model::{EntityId, Op, Schedule, Step, TxnId};
use deltx::storage::{Store, TxnBuffer};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Executes `steps` interleaved against storage; returns the final store
/// and the executed (accepted) steps.
fn execute_interleaved(steps: &[Step]) -> (Store, Vec<Step>, HashSet<TxnId>) {
    let mut cg = CgState::new();
    let mut store = Store::new();
    let mut bufs: HashMap<TxnId, TxnBuffer> = HashMap::new();
    let mut executed: Vec<Step> = Vec::new();
    for step in steps {
        match cg.apply(step).expect("well-formed") {
            Applied::Accepted => {
                match &step.op {
                    Op::Begin => {
                        bufs.insert(step.txn, TxnBuffer::new(step.txn));
                    }
                    Op::Read(x) => {
                        bufs.get_mut(&step.txn).expect("begun").read(&store, *x);
                    }
                    Op::WriteAll(xs) => {
                        let buf = bufs.get_mut(&step.txn).expect("begun");
                        let sum: i64 = buf.read_log().iter().map(|&(_, v)| v).sum();
                        for &x in xs {
                            buf.stage_write(x, sum + i64::from(step.txn.0));
                        }
                        buf.install(&mut store);
                    }
                    _ => unreachable!("basic model only"),
                }
                executed.push(step.clone());
            }
            Applied::SelfAborted | Applied::IgnoredAborted => {
                bufs.remove(&step.txn);
            }
        }
    }
    (store, executed, cg.aborted_txns().clone())
}

/// Replays complete transactions serially in `order` with the same value
/// functions; returns the final store.
fn execute_serial(
    programs: &BTreeMap<TxnId, (Vec<EntityId>, Vec<EntityId>)>,
    order: &[TxnId],
) -> Store {
    let mut store = Store::new();
    for &t in order {
        let (reads, writes) = &programs[&t];
        let mut buf = TxnBuffer::new(t);
        for &x in reads {
            buf.read(&store, x);
        }
        let sum: i64 = buf.read_log().iter().map(|&(_, v)| v).sum();
        for &x in writes {
            buf.stage_write(x, sum + i64::from(t.0));
        }
        buf.install(&mut store);
    }
    store
}

/// Topological order of the accepted transactions w.r.t. the static
/// conflict relation of the executed steps.
fn serial_order(executed: &[Step]) -> Vec<TxnId> {
    let rel = conflict_relation(&Schedule::from_steps(executed.to_vec()));
    // Kahn over the txn-level relation.
    let mut indeg: BTreeMap<TxnId, usize> = rel.txns.iter().map(|&t| (t, 0)).collect();
    for bs in rel.succ.values() {
        for b in bs {
            *indeg.get_mut(b).expect("known txn") += 1;
        }
    }
    let mut ready: Vec<TxnId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&t, _)| t)
        .collect();
    let mut out = Vec::new();
    while let Some(t) = ready.pop() {
        out.push(t);
        if let Some(bs) = rel.succ.get(&t) {
            for &b in bs {
                let d = indeg.get_mut(&b).expect("known");
                *d -= 1;
                if *d == 0 {
                    ready.push(b);
                }
            }
        }
    }
    assert_eq!(out.len(), rel.txns.len(), "accepted graph must be acyclic");
    out
}

#[test]
fn interleaved_equals_some_serial_execution() {
    for seed in 0..6u64 {
        let cfg = WorkloadConfig {
            n_entities: 5,
            concurrency: 4,
            total_txns: 50,
            seed: 900 + seed,
            ..WorkloadConfig::default()
        };
        let steps: Vec<Step> = WorkloadGen::new(cfg).collect();
        let (store, executed, _aborted) = execute_interleaved(&steps);

        // Reconstruct per-transaction programs from the executed steps of
        // COMPLETE transactions only.
        let mut programs: BTreeMap<TxnId, (Vec<EntityId>, Vec<EntityId>)> = BTreeMap::new();
        let mut complete: HashSet<TxnId> = HashSet::new();
        for s in &executed {
            match &s.op {
                Op::Begin => {
                    programs.insert(s.txn, (Vec::new(), Vec::new()));
                }
                Op::Read(x) => programs.get_mut(&s.txn).expect("begun").0.push(*x),
                Op::WriteAll(xs) => {
                    programs.get_mut(&s.txn).expect("begun").1 = xs.clone();
                    complete.insert(s.txn);
                }
                _ => unreachable!(),
            }
        }
        // Keep only complete transactions (incomplete ones wrote nothing).
        let executed_complete: Vec<Step> = executed
            .iter()
            .filter(|s| complete.contains(&s.txn))
            .cloned()
            .collect();
        programs.retain(|t, _| complete.contains(t));

        let order = serial_order(&executed_complete);
        let serial_store = execute_serial(&programs, &order);

        // Final states must agree on every entity either execution wrote.
        let mut entities: Vec<EntityId> = store.written_entities();
        entities.extend(serial_store.written_entities());
        entities.sort_unstable();
        entities.dedup();
        for x in entities {
            assert_eq!(
                store.read(x),
                serial_store.read(x),
                "seed {seed}: divergent final value of {x:?}"
            );
        }
    }
}
