//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`] — with a simple wall-clock measurement: a short warm-up,
//! then `sample_size` timed batches, reporting the per-iteration median to
//! stdout. No plots, no statistics, no saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted and ignored.
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    #[default]
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    samples: usize,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Bencher {
    /// Times `routine`, printing the median over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up round (untimed).
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.report(times[times.len() / 2]);
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.report(times[times.len() / 2]);
    }

    fn report(&self, median: Duration) {
        println!(
            "    time: {}/iter (median of {})",
            fmt_duration(median),
            self.samples
        );
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the command line: only benchmarks whose
    /// full id (`group/bench`) contains it are run.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement time; accepted and ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    fn selected(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        if !self.selected(&id) {
            return self;
        }
        println!("bench: {id}");
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            header_printed: false,
            parent: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    header_printed: bool,
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Per-group sample-size override.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares iteration throughput; accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// True (printing the lazy group header) if the bench is selected
    /// by the CLI filter.
    fn enter(&mut self, id: &str) -> bool {
        if !self.parent.selected(&format!("{}/{id}", self.name)) {
            return false;
        }
        if !self.header_printed {
            println!("group: {}", self.name);
            self.header_printed = true;
        }
        true
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        if !self.enter(&id) {
            return self;
        }
        println!("  bench: {id}");
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
        };
        f(&mut b);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        if !self.enter(&id) {
            return self;
        }
        println!("  bench: {id}");
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
        };
        f(&mut b, input);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a configured
/// [`Criterion`] builder.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("with-input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function(BenchmarkId::from_parameter(9), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
