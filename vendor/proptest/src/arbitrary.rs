//! `any::<T>()` for the primitive types the workspace generates.

use crate::strategy::{AnyStrategy, Strategy};
use crate::test_runner::Rng;
use rand::Rng as _;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Clone + std::fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut Rng) -> Self;
}

/// The canonical strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut Rng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut Rng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut Rng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut Rng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for u8 {
    fn arbitrary_value(rng: &mut Rng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary_value(rng: &mut Rng) -> i64 {
        rng.next_u64() as i64
    }
}
