//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use rand::Rng as _;
use std::collections::BTreeSet;
use std::ops::Range;

/// A length/size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut Rng) -> usize {
        rng.gen_range(self.lo..self.hi_exclusive)
    }
}

/// Strategy for vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}

/// Strategy for ordered sets of `element` values with **at most** the
/// sampled size (duplicates collapse, as in proptest).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn gen(&self, rng: &mut Rng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}
