//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `name(binding in strategy, ..)` test functions;
//! * [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] (plain
//!   panicking asserts here — there is no shrinking to resume);
//! * strategies: integer/float ranges, tuples, [`strategy::Just`],
//!   [`prop_oneof!`] (weighted and unweighted),
//!   [`collection::vec`]/[`collection::btree_set`],
//!   [`strategy::Strategy::prop_map`], and [`arbitrary::any`];
//! * [`test_runner::TestRunner`] with
//!   [`strategy::Strategy::new_tree`]/[`strategy::ValueTree::current`].
//!
//! Values are generated from a deterministic RNG; failing cases are
//! reported by the panic message, **without shrinking**.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec(..)`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Picks among alternative strategies, optionally weighted
/// (`w => strategy`). All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each listed function runs `config.cases`
/// times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests $config; $($rest)*);
    };
    (@tests $config:expr; ) => {};
    (@tests $config:expr;
        $(#[$meta:meta])+
        fn $name:ident($($binding:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            for _case in 0..config.cases {
                $(let $binding = $crate::strategy::Strategy::gen(&($strat), runner.rng());)*
                $body
            }
        }
        $crate::proptest!(@tests $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u32..10, (a, b) in ((0usize..4), (1i64..=5))) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((1..=5).contains(&b));
        }

        #[test]
        fn mapped_vectors(v in prop::collection::vec((0u32..5).prop_map(|n| n * 2), 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&n| n % 2 == 0 && n < 10));
        }

        #[test]
        fn oneof_weighted(k in prop_oneof![3 => Just(0u8), 1 => Just(1u8)]) {
            prop_assert!(k <= 1);
        }

        #[test]
        fn any_values(seed in any::<u64>(), flag in any::<bool>()) {
            // Both type-check and are usable.
            let _ = seed.wrapping_add(u64::from(flag));
        }

        #[test]
        fn btree_sets(s in prop::collection::btree_set(0usize..6, 0..4)) {
            prop_assert!(s.len() < 4);
            prop_assert!(s.iter().all(|&n| n < 6));
        }
    }

    #[test]
    fn manual_runner() {
        let mut runner = TestRunner::default();
        let strat = prop::collection::vec(0u32..9, 2..5);
        for _ in 0..20 {
            let v = strat.new_tree(&mut runner).expect("gen").current();
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut runner = TestRunner::default();
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.gen(runner.rng()) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
