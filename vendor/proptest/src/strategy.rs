//! The [`Strategy`] trait and its combinators (generation only — this
//! stand-in does not shrink).

use crate::test_runner::{Rng, TestRunner};
use rand::Rng as _;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generated value plus its (absent) shrink state.
pub trait ValueTree {
    /// The value type.
    type Value;
    /// The current value.
    fn current(&self) -> Self::Value;
}

/// Trivial value tree: holds the generated value, never shrinks.
pub struct NoShrink<T>(pub T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// Generates values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn gen(&self, rng: &mut Rng) -> Self::Value;

    /// Draws one value wrapped in a (non-shrinking) tree.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<NoShrink<Self::Value>, String>
    where
        Self: Sized,
    {
        Ok(NoShrink(self.gen(runner.rng())))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.gen(rng)))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut Rng) -> T>);

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
}

/// Weighted choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Self { arms, total }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut Rng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.gen(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Marker for strategies produced by [`crate::arbitrary::any`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);
