//! Test-runner state: configuration and the RNG driving generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Re-export so strategies can name the RNG type.
pub type Rng = StdRng;

/// Configuration for a property-test run.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many generated cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Drives value generation for one test function.
pub struct TestRunner {
    config: ProptestConfig,
    rng: Rng,
}

impl TestRunner {
    /// Runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        Self {
            config,
            // Fixed seed: deterministic test runs, like proptest's
            // default deterministic-rng configuration.
            rng: StdRng::seed_from_u64(0x5EED_CAFE_F00D),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProptestConfig {
        &self.config
    }

    /// The generation RNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::new(ProptestConfig::default())
    }
}
