//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly what the `deltx` workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and the [`Rng`] methods
//! `gen_range` (over half-open and inclusive integer ranges and half-open
//! `f64` ranges) and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64, which passes the statistical smoke tests the workspace
//! relies on (Zipf skew checks, shuffle uniformity).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction: the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map 64 random bits to a double in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, standard conversion.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64 —
    /// the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {c}");
        }
    }
}
