//! Offline stand-in for the `serde` crate.
//!
//! Exposes the `Serialize`/`Deserialize` *names* in both the trait and
//! macro namespaces, as real serde does: `use serde::{Serialize,
//! Deserialize}` brings in both the (empty) marker traits and the no-op
//! derive macros from `serde_derive`. Nothing in this workspace actually
//! serializes, so no methods are needed.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Empty marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Empty marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
