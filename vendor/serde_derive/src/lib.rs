//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The workspace uses the derives purely as annotations (nothing is ever
//! serialized), so the expansion is empty. The `serde` helper attribute is
//! declared so field attributes like `#[serde(skip)]` parse and are
//! ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
